#include "io/snapshot.h"

#include <cstring>
#include <utility>

#include "common/aligned.h"
#include "common/check.h"
#include "common/storage.h"

namespace viptree {
namespace io {

namespace {

// ---------------------------------------------------------------------------
// Section tags (shared by both format versions).
// ---------------------------------------------------------------------------

constexpr char kMagic[8] = {'V', 'I', 'P', 'T', 'S', 'N', 'A', 'P'};

constexpr uint32_t Tag(char a, char b, char c, char d) {
  return uint32_t(uint8_t(a)) | uint32_t(uint8_t(b)) << 8 |
         uint32_t(uint8_t(c)) << 16 | uint32_t(uint8_t(d)) << 24;
}

constexpr uint32_t kTagVenue = Tag('V', 'E', 'N', 'U');
constexpr uint32_t kTagGraph = Tag('G', 'R', 'P', 'H');
constexpr uint32_t kTagTree = Tag('T', 'R', 'E', 'E');
constexpr uint32_t kTagVip = Tag('V', 'I', 'P', 'X');
constexpr uint32_t kTagObjects = Tag('O', 'B', 'J', 'X');
constexpr uint32_t kTagKeywords = Tag('K', 'W', 'I', 'X');
constexpr uint32_t kTagEngineOptions = Tag('E', 'N', 'G', 'O');

std::string TagName(uint32_t tag) {
  std::string name(4, '?');
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>((tag >> (8 * i)) & 0xFF);
    name[i] = (c >= 0x20 && c < 0x7F) ? c : '?';
  }
  return name;
}

// ---------------------------------------------------------------------------
// Field helpers (shared).
// ---------------------------------------------------------------------------

void WritePoint(Writer& w, const Point& p) {
  w.F64(p.x);
  w.F64(p.y);
  w.F64(p.z);
}

Point ReadPoint(Reader& r) {
  Point p;
  p.x = r.F64();
  p.y = r.F64();
  p.z = r.F64();
  return p;
}

// Division-based bounds check so a corrupted rows*cols cannot overflow into
// a bogus small allocation.
bool MatrixShapeFits(Reader& r, uint64_t rows, uint64_t cols,
                     size_t element_size, const char* what) {
  if (!r.ok()) return false;
  if (rows != 0 && cols > (r.remaining() / element_size) / rows) {
    r.Fail(std::string("truncated: ") + what + " claims " +
           std::to_string(rows) + "x" + std::to_string(cols) +
           " cells but only " + std::to_string(r.remaining()) +
           " bytes remain");
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Format v1: unaligned field-by-field encoding, always decoded by copying.
// The byte layout is kept exactly as PR 3 wrote it so pre-v2 snapshots keep
// loading bit-identically.
// ---------------------------------------------------------------------------

void WriteI32Vec(Writer& w, Span<const int32_t> v) {
  w.U64(v.size());
  w.I32Array(v);
}

std::vector<int32_t> ReadI32Vec(Reader& r, const char* what) {
  const uint64_t n = r.ArraySize(4, what);
  std::vector<int32_t> v(n);
  r.I32Array(v.data(), n);
  return v;
}

void WriteU32Vec(Writer& w, Span<const uint32_t> v) {
  w.U64(v.size());
  w.U32Array(v);
}

std::vector<uint32_t> ReadU32Vec(Reader& r, const char* what) {
  const uint64_t n = r.ArraySize(4, what);
  std::vector<uint32_t> v(n);
  r.U32Array(v.data(), n);
  return v;
}

void WriteU64Vec(Writer& w, Span<const uint64_t> v) {
  w.U64(v.size());
  w.U64Array(v);
}

std::vector<uint64_t> ReadU64Vec(Reader& r, const char* what) {
  const uint64_t n = r.ArraySize(8, what);
  std::vector<uint64_t> v(n);
  r.U64Array(v.data(), n);
  return v;
}

void WriteF64Vec(Writer& w, Span<const double> v) {
  w.U64(v.size());
  w.F64Array(v);
}

std::vector<double> ReadF64Vec(Reader& r, const char* what) {
  const uint64_t n = r.ArraySize(8, what);
  std::vector<double> v(n);
  r.F64Array(v.data(), n);
  return v;
}

void WriteMatrixF32(Writer& w, const FlatMatrix<float>& m) {
  w.U64(m.rows());
  w.U64(m.cols());
  w.F32Array(m.raw());
}

FlatMatrix<float> ReadMatrixF32(Reader& r, const char* what) {
  const uint64_t rows = r.U64();
  const uint64_t cols = r.U64();
  if (!MatrixShapeFits(r, rows, cols, 4, what)) return {};
  const uint64_t n = rows * cols;
  std::vector<float> data(n);
  r.F32Array(data.data(), n);
  if (!r.ok()) return {};
  return FlatMatrix<float>(rows, cols, std::move(data));
}

void WriteMatrixI32(Writer& w, const FlatMatrix<int32_t>& m) {
  w.U64(m.rows());
  w.U64(m.cols());
  w.I32Array(m.raw());
}

FlatMatrix<int32_t> ReadMatrixI32(Reader& r, const char* what) {
  const uint64_t rows = r.U64();
  const uint64_t cols = r.U64();
  if (!MatrixShapeFits(r, rows, cols, 4, what)) return {};
  const uint64_t n = rows * cols;
  std::vector<int32_t> data(n);
  r.I32Array(data.data(), n);
  if (!r.ok()) return {};
  return FlatMatrix<int32_t>(rows, cols, std::move(data));
}

// --- v1 per-section encoders/decoders. -------------------------------------

void EncodeVenue(Writer& w, const Venue::Parts& parts) {
  w.I32(parts.beta);
  w.U64(parts.partitions.size());
  for (const Partition& p : parts.partitions) {
    w.I32(p.id);
    w.I32(p.level);
    w.I32(p.zone);
    w.U8(static_cast<uint8_t>(p.use));
    w.F64(p.cost_scale);
    WritePoint(w, p.centroid);
    w.String(p.name);
  }
  w.U64(parts.doors.size());
  for (const Door& d : parts.doors) {
    w.I32(d.id);
    w.I32(d.partition_a);
    w.I32(d.partition_b);
    WritePoint(w, d.position);
  }
}

void DecodeVenue(Reader& r, Venue::Parts* parts) {
  parts->beta = r.I32();
  const uint64_t num_partitions = r.ArraySize(41, "venue partitions");
  parts->partitions.resize(num_partitions);
  for (Partition& p : parts->partitions) {
    p.id = r.I32();
    p.level = r.I32();
    p.zone = r.I32();
    const uint8_t use = r.U8();
    if (use > static_cast<uint8_t>(PartitionUse::kOther)) {
      r.Fail("partition has unknown use tag " + std::to_string(use));
      return;
    }
    p.use = static_cast<PartitionUse>(use);
    p.cost_scale = r.F64();
    p.centroid = ReadPoint(r);
    p.name = r.String();
  }
  const uint64_t num_doors = r.ArraySize(36, "venue doors");
  parts->doors.resize(num_doors);
  for (Door& d : parts->doors) {
    d.id = r.I32();
    d.partition_a = r.I32();
    d.partition_b = r.I32();
    d.position = ReadPoint(r);
  }
}

void EncodeGraphV1(Writer& w, const D2DGraph::Parts& parts) {
  w.U64(parts.num_vertices);
  WriteU64Vec(w, parts.offsets);
  w.U64(parts.edges.size());
  for (const D2DEdge& e : parts.edges) {
    w.I32(e.to);
    w.F32(e.weight);
    w.I32(e.via);
  }
}

void DecodeGraphV1(Reader& r, D2DGraph::Parts* parts) {
  parts->num_vertices = r.U64();
  parts->offsets = ReadU64Vec(r, "graph offsets");
  const uint64_t num_edges = r.ArraySize(12, "graph edges");
  std::vector<D2DEdge> edges(num_edges);
  for (D2DEdge& e : edges) {
    e.to = r.I32();
    e.weight = r.F32();
    e.via = r.I32();
  }
  parts->edges = std::move(edges);
}

void EncodeTreeV1(Writer& w, const IPTree::Parts& parts) {
  w.U64(parts.nodes.size());
  for (const TreeNode& node : parts.nodes) {
    w.I32(node.id);
    w.I32(node.parent);
    w.I32(node.level);
    WriteI32Vec(w, node.children);
    WriteI32Vec(w, node.partitions);
    WriteI32Vec(w, node.doors);
    WriteI32Vec(w, node.access_doors);
    WriteI32Vec(w, node.matrix_doors);
    WriteMatrixF32(w, node.dist);
    WriteMatrixI32(w, node.next_hop);
    w.U32(node.leaf_begin);
    w.U32(node.leaf_end);
  }
  w.I32(parts.root);
  w.U64(parts.num_leaves);
  WriteI32Vec(w, parts.leaf_of_partition);
  w.U64(parts.door_leaves.size());
  for (const auto& entries : parts.door_leaves) {
    for (const IPTree::DoorLeafEntry& e : entries) {
      w.I32(e.leaf);
      w.U32(e.row);
    }
  }
  w.U64(parts.is_access_door.size());
  w.Bytes(parts.is_access_door.data(), parts.is_access_door.size());
  WriteU32Vec(w, parts.superior_offsets);
  WriteI32Vec(w, parts.superior_doors);
}

void DecodeTreeV1(Reader& r, IPTree::Parts* parts) {
  const uint64_t num_nodes = r.ArraySize(60, "tree nodes");
  parts->nodes.resize(num_nodes);
  for (TreeNode& node : parts->nodes) {
    node.id = r.I32();
    node.parent = r.I32();
    node.level = r.I32();
    node.children = ReadI32Vec(r, "node children");
    node.partitions = ReadI32Vec(r, "node partitions");
    node.doors = ReadI32Vec(r, "node doors");
    node.access_doors = ReadI32Vec(r, "node access doors");
    node.matrix_doors = ReadI32Vec(r, "node matrix doors");
    node.dist = ReadMatrixF32(r, "node distance matrix");
    node.next_hop = ReadMatrixI32(r, "node next-hop matrix");
    node.leaf_begin = r.U32();
    node.leaf_end = r.U32();
    if (!r.ok()) return;
  }
  parts->root = r.I32();
  parts->num_leaves = r.U64();
  parts->leaf_of_partition = ReadI32Vec(r, "leaf_of_partition");
  const uint64_t num_doors = r.ArraySize(16, "door_leaves");
  std::vector<IPTree::DoorLeafPair> door_leaves(num_doors);
  for (auto& entries : door_leaves) {
    for (IPTree::DoorLeafEntry& e : entries) {
      e.leaf = r.I32();
      e.row = r.U32();
    }
  }
  parts->door_leaves = std::move(door_leaves);
  const uint64_t num_flags = r.ArraySize(1, "is_access_door");
  std::vector<uint8_t> is_access_door(num_flags);
  const Span<const uint8_t> flags = r.Raw(num_flags);
  if (r.ok() && num_flags != 0) {
    std::memcpy(is_access_door.data(), flags.data(), num_flags);
  }
  parts->is_access_door = std::move(is_access_door);
  parts->superior_offsets = ReadU32Vec(r, "superior offsets");
  parts->superior_doors = ReadI32Vec(r, "superior doors");
}

void EncodeVipV1(Writer& w, const VIPTree::Parts& parts) {
  w.U64(parts.ext.size());
  for (const VIPTree::ExtMatrix& ext : parts.ext) {
    WriteI32Vec(w, ext.doors);
    WriteMatrixF32(w, ext.dist);
    WriteMatrixI32(w, ext.next_hop);
  }
}

void DecodeVipV1(Reader& r, VIPTree::Parts* parts) {
  const uint64_t num_nodes = r.ArraySize(40, "extended matrices");
  parts->ext.resize(num_nodes);
  for (VIPTree::ExtMatrix& ext : parts->ext) {
    ext.doors = ReadI32Vec(r, "extended matrix doors");
    ext.dist = ReadMatrixF32(r, "extended distance matrix");
    ext.next_hop = ReadMatrixI32(r, "extended next-hop matrix");
    if (!r.ok()) return;
  }
}

void EncodeObjectList(Writer& w, const std::vector<IndoorPoint>& objects) {
  w.U64(objects.size());
  for (const IndoorPoint& obj : objects) {
    w.I32(obj.partition);
    WritePoint(w, obj.position);
  }
}

void DecodeObjectList(Reader& r, std::vector<IndoorPoint>* objects) {
  const uint64_t num_objects = r.ArraySize(28, "objects");
  objects->resize(num_objects);
  for (IndoorPoint& obj : *objects) {
    obj.partition = r.I32();
    obj.position = ReadPoint(r);
  }
}

void EncodeObjectsV1(Writer& w, const ObjectIndex::Parts& parts) {
  EncodeObjectList(w, parts.objects);
  WriteU32Vec(w, parts.leaf_object_offsets);
  WriteI32Vec(w, parts.leaf_objects);
  WriteU64Vec(w, parts.dist_offsets);
  WriteF64Vec(w, parts.door_dists);
  WriteU32Vec(w, parts.dfs_prefix);
}

void DecodeObjectsV1(Reader& r, ObjectIndex::Parts* parts) {
  DecodeObjectList(r, &parts->objects);
  parts->leaf_object_offsets = ReadU32Vec(r, "leaf object offsets");
  parts->leaf_objects = ReadI32Vec(r, "leaf objects");
  parts->dist_offsets = ReadU64Vec(r, "distance offsets");
  parts->door_dists = ReadF64Vec(r, "door-object distances");
  parts->dfs_prefix = ReadU32Vec(r, "dfs prefix sums");
}

void EncodeKeywords(Writer& w, const KeywordIndex::Parts& parts) {
  w.U64(parts.keywords_by_id.size());
  for (const std::string& word : parts.keywords_by_id) w.String(word);
  w.U64(parts.object_keywords.size());
  for (const auto& list : parts.object_keywords) WriteI32Vec(w, list);
  w.U64(parts.node_keywords.size());
  for (const auto& list : parts.node_keywords) WriteI32Vec(w, list);
}

void DecodeKeywords(Reader& r, KeywordIndex::Parts* parts) {
  const uint64_t num_words = r.ArraySize(8, "keyword dictionary");
  parts->keywords_by_id.resize(num_words);
  for (std::string& word : parts->keywords_by_id) word = r.String();
  const uint64_t num_objects = r.ArraySize(8, "object keyword lists");
  parts->object_keywords.resize(num_objects);
  for (auto& list : parts->object_keywords) {
    list = ReadI32Vec(r, "object keyword list");
  }
  const uint64_t num_nodes = r.ArraySize(8, "node keyword lists");
  parts->node_keywords.resize(num_nodes);
  for (auto& list : parts->node_keywords) {
    list = ReadI32Vec(r, "node keyword list");
  }
}

void EncodeEngineOptions(Writer& w, const DistanceQueryOptions& options) {
  w.U8(options.use_superior_doors ? 1 : 0);
}

void DecodeEngineOptions(Reader& r, DistanceQueryOptions* options) {
  options->use_superior_doors = r.U8() != 0;
}

// ---------------------------------------------------------------------------
// Format v2: 8-aligned bulk arrays that can be aliased into the file.
// ---------------------------------------------------------------------------

void PadTo8(Writer& w) {
  while (w.size() % 8 != 0) w.U8(0);
}

// Per-element fallbacks, used only on big-endian hosts (and for the v2
// copy path there): the byte layout they produce is identical to the raw
// little-endian struct bytes.
void EncodeElement(Writer& w, uint8_t v) { w.U8(v); }
void EncodeElement(Writer& w, uint32_t v) { w.U32(v); }
void EncodeElement(Writer& w, int32_t v) { w.I32(v); }
void EncodeElement(Writer& w, uint64_t v) { w.U64(v); }
void EncodeElement(Writer& w, float v) { w.F32(v); }
void EncodeElement(Writer& w, double v) { w.F64(v); }
void EncodeElement(Writer& w, const D2DEdge& e) {
  w.I32(e.to);
  w.F32(e.weight);
  w.I32(e.via);
}
void EncodeElement(Writer& w, const IPTree::DoorLeafPair& pair) {
  for (const IPTree::DoorLeafEntry& e : pair) {
    w.I32(e.leaf);
    w.U32(e.row);
  }
}

void DecodeElement(Reader& r, uint8_t* v) { *v = r.U8(); }
void DecodeElement(Reader& r, uint32_t* v) { *v = r.U32(); }
void DecodeElement(Reader& r, int32_t* v) { *v = r.I32(); }
void DecodeElement(Reader& r, uint64_t* v) { *v = r.U64(); }
void DecodeElement(Reader& r, float* v) { *v = r.F32(); }
void DecodeElement(Reader& r, double* v) { *v = r.F64(); }
void DecodeElement(Reader& r, D2DEdge* e) {
  e->to = r.I32();
  e->weight = r.F32();
  e->via = r.I32();
}
void DecodeElement(Reader& r, IPTree::DoorLeafPair* pair) {
  for (IPTree::DoorLeafEntry& e : *pair) {
    e.leaf = r.I32();
    e.row = r.U32();
  }
}

// Raw element bytes, padded to an 8-aligned position relative to the
// payload start (== relative to the file, since payload offsets are
// 8-aligned).
template <typename T>
void WriteRawElems(Writer& w, Span<const T> v) {
  static_assert(std::is_trivially_copyable<T>::value, "raw array element");
  PadTo8(w);
  if (detail::kHostIsLittleEndian) {
    w.Bytes(v.data(), v.size() * sizeof(T));
  } else {
    for (const T& x : v) EncodeElement(w, x);
  }
}

template <typename T>
void WriteAlignedArray(Writer& w, Span<const T> v) {
  w.U64(v.size());
  WriteRawElems(w, v);
}

// Decodes v2 payloads; hands out views into the payload when aliasing is
// possible (little-endian host, suitably aligned pointer), owning copies
// otherwise. Records whether any view was handed out.
class SectionReader {
 public:
  SectionReader(Span<const uint8_t> payload, bool allow_alias, bool* aliased)
      : r_(payload), allow_alias_(allow_alias), aliased_(aliased) {}

  Reader& r() { return r_; }

  template <typename T>
  Storage<T> Array(const char* what) {
    const uint64_t n = r_.ArraySize(sizeof(T), what);
    return RawElems<T>(n, what);
  }

  // Reads an array whose element count was decoded earlier (the split
  // hot-metadata / cold-blob layout of the TREE and VIPX sections).
  template <typename T>
  Storage<T> ShapedArray(uint64_t n, const char* what) {
    if (!r_.ok()) return {};
    if (n > r_.remaining() / sizeof(T)) {
      r_.Fail(std::string("truncated: ") + what + " claims " +
              std::to_string(n) + " elements but only " +
              std::to_string(r_.remaining()) + " bytes remain");
      return {};
    }
    return RawElems<T>(n, what);
  }

  template <typename T>
  FlatMatrix<T> ShapedMatrix(uint64_t rows, uint64_t cols, const char* what) {
    if (!MatrixShapeFits(r_, rows, cols, sizeof(T), what)) return {};
    Storage<T> data = RawElems<T>(rows * cols, what);
    if (!r_.ok()) return {};
    return FlatMatrix<T>(rows, cols, std::move(data));
  }

 private:
  template <typename T>
  Storage<T> RawElems(uint64_t n, const char* what) {
    SkipPad();
    const size_t start = r_.position();
    const Span<const uint8_t> raw = r_.Raw(n * sizeof(T));
    if (!r_.ok()) return {};
    if (detail::kHostIsLittleEndian && allow_alias_ &&
        reinterpret_cast<uintptr_t>(raw.data()) % alignof(T) == 0) {
      *aliased_ = true;
      return Storage<T>::View(
          {reinterpret_cast<const T*>(raw.data()), static_cast<size_t>(n)});
    }
    AlignedVector<T> v(n);
    if (detail::kHostIsLittleEndian) {
      if (n != 0) std::memcpy(v.data(), raw.data(), n * sizeof(T));
    } else {
      Reader elems(raw);
      for (T& x : v) DecodeElement(elems, &x);
      if (!elems.ok()) {
        r_.Fail(std::string("malformed ") + what + " at offset " +
                std::to_string(start));
        return {};
      }
    }
    return Storage<T>(std::move(v));
  }

  void SkipPad() {
    const size_t pad = (8 - r_.position() % 8) % 8;
    if (pad != 0) r_.Raw(pad);
  }

  Reader r_;
  bool allow_alias_;
  bool* aliased_;
};

// --- v2 per-section encoders/decoders (VENU / KWIX / ENGO reuse the
// field-wise v1 codecs — they hold no bulk arrays worth aliasing). ---------

void EncodeGraphV2(Writer& w, const D2DGraph::Parts& parts) {
  w.U64(parts.num_vertices);
  WriteAlignedArray<uint64_t>(w, parts.offsets);
  WriteAlignedArray<D2DEdge>(w, parts.edges);
}

void DecodeGraphV2(SectionReader& s, D2DGraph::Parts* parts) {
  parts->num_vertices = s.r().U64();
  parts->offsets = s.Array<uint64_t>("graph offsets");
  parts->edges = s.Array<D2DEdge>("graph edges");
}

// Layout note: the TREE and VIPX sections segregate hot bytes from cold
// bytes. Everything the decoder must *read* (node scalars, the small
// per-node door lists it copies into TreeNode vectors, matrix shapes)
// comes first; the matrix payloads — the bulk of the snapshot, aliased
// and never read at load time — sit in one contiguous blob at the end of
// the section. Interleaving them per node would drag the cold matrix
// pages into memory alongside the hot metadata that shares their 4 KiB
// pages, destroying the O(touched-pages) property of the mmap load.

void EncodeTreeV2(Writer& w, const IPTree::Parts& parts) {
  w.U64(parts.nodes.size());
  for (const TreeNode& node : parts.nodes) {
    w.I32(node.id);
    w.I32(node.parent);
    w.I32(node.level);
    w.U32(node.leaf_begin);
    w.U32(node.leaf_end);
    WriteAlignedArray<int32_t>(w, node.children);
    WriteAlignedArray<int32_t>(w, node.partitions);
    WriteAlignedArray<int32_t>(w, node.doors);
    WriteAlignedArray<int32_t>(w, node.access_doors);
    WriteAlignedArray<int32_t>(w, node.matrix_doors);
    w.U64(node.dist.rows());
    w.U64(node.dist.cols());
    w.U64(node.next_hop.rows());
    w.U64(node.next_hop.cols());
  }
  w.I32(parts.root);
  w.U64(parts.num_leaves);
  WriteAlignedArray<int32_t>(w, parts.leaf_of_partition);
  WriteAlignedArray<IPTree::DoorLeafPair>(w, parts.door_leaves);
  WriteAlignedArray<uint8_t>(w, parts.is_access_door);
  WriteAlignedArray<uint32_t>(w, parts.superior_offsets);
  WriteAlignedArray<int32_t>(w, parts.superior_doors);
  // Cold matrix blob.
  for (const TreeNode& node : parts.nodes) {
    WriteRawElems<float>(w, node.dist.raw());
    WriteRawElems<int32_t>(w, node.next_hop.raw());
  }
}

std::vector<int32_t> ToVector(Storage<int32_t> s) {
  return std::vector<int32_t>(s.begin(), s.end());
}

void DecodeTreeV2(SectionReader& s, IPTree::Parts* parts) {
  Reader& r = s.r();
  const uint64_t num_nodes = r.ArraySize(60, "tree nodes");
  parts->nodes.resize(num_nodes);
  std::vector<std::array<uint64_t, 4>> shapes(num_nodes);
  for (uint64_t i = 0; i < num_nodes; ++i) {
    TreeNode& node = parts->nodes[i];
    node.id = r.I32();
    node.parent = r.I32();
    node.level = r.I32();
    node.leaf_begin = r.U32();
    node.leaf_end = r.U32();
    // The per-node door lists stay owned vectors in TreeNode (they are
    // small and heavily iterated); only the matrices alias the arena.
    node.children = ToVector(s.Array<int32_t>("node children"));
    node.partitions = ToVector(s.Array<int32_t>("node partitions"));
    node.doors = ToVector(s.Array<int32_t>("node doors"));
    node.access_doors = ToVector(s.Array<int32_t>("node access doors"));
    node.matrix_doors = ToVector(s.Array<int32_t>("node matrix doors"));
    shapes[i] = {r.U64(), r.U64(), r.U64(), r.U64()};
    if (!r.ok()) return;
  }
  parts->root = r.I32();
  parts->num_leaves = r.U64();
  parts->leaf_of_partition = s.Array<int32_t>("leaf_of_partition");
  parts->door_leaves = s.Array<IPTree::DoorLeafPair>("door_leaves");
  parts->is_access_door = s.Array<uint8_t>("is_access_door");
  parts->superior_offsets = s.Array<uint32_t>("superior offsets");
  parts->superior_doors = s.Array<int32_t>("superior doors");
  for (uint64_t i = 0; i < num_nodes; ++i) {
    parts->nodes[i].dist =
        s.ShapedMatrix<float>(shapes[i][0], shapes[i][1],
                              "node distance matrix");
    parts->nodes[i].next_hop = s.ShapedMatrix<int32_t>(
        shapes[i][2], shapes[i][3], "node next-hop matrix");
    if (!r.ok()) return;
  }
}

void EncodeVipV2(Writer& w, const VIPTree::Parts& parts) {
  w.U64(parts.ext.size());
  for (const VIPTree::ExtMatrix& ext : parts.ext) {
    w.U64(ext.doors.size());
    w.U64(ext.dist.rows());
    w.U64(ext.dist.cols());
    w.U64(ext.next_hop.rows());
    w.U64(ext.next_hop.cols());
  }
  // Cold blob: the row-door lists and matrices, all aliased on load.
  for (const VIPTree::ExtMatrix& ext : parts.ext) {
    WriteRawElems<int32_t>(w, ext.doors.span());
    WriteRawElems<float>(w, ext.dist.raw());
    WriteRawElems<int32_t>(w, ext.next_hop.raw());
  }
}

void DecodeVipV2(SectionReader& s, VIPTree::Parts* parts) {
  Reader& r = s.r();
  const uint64_t num_nodes = r.ArraySize(40, "extended matrices");
  parts->ext.resize(num_nodes);
  std::vector<std::array<uint64_t, 5>> shapes(num_nodes);
  for (uint64_t i = 0; i < num_nodes; ++i) {
    shapes[i] = {r.U64(), r.U64(), r.U64(), r.U64(), r.U64()};
  }
  for (uint64_t i = 0; i < num_nodes; ++i) {
    VIPTree::ExtMatrix& ext = parts->ext[i];
    ext.doors = s.ShapedArray<int32_t>(shapes[i][0], "extended matrix doors");
    ext.dist = s.ShapedMatrix<float>(shapes[i][1], shapes[i][2],
                                     "extended distance matrix");
    ext.next_hop = s.ShapedMatrix<int32_t>(shapes[i][3], shapes[i][4],
                                           "extended next-hop matrix");
    if (!r.ok()) return;
  }
}

void EncodeObjectsV2(Writer& w, const ObjectIndex::Parts& parts) {
  EncodeObjectList(w, parts.objects);
  WriteAlignedArray<uint32_t>(w, parts.leaf_object_offsets);
  WriteAlignedArray<int32_t>(w, parts.leaf_objects);
  WriteAlignedArray<uint64_t>(w, parts.dist_offsets);
  WriteAlignedArray<double>(w, parts.door_dists);
  WriteAlignedArray<uint32_t>(w, parts.dfs_prefix);
}

void DecodeObjectsV2(SectionReader& s, ObjectIndex::Parts* parts) {
  DecodeObjectList(s.r(), &parts->objects);
  parts->leaf_object_offsets = s.Array<uint32_t>("leaf object offsets");
  parts->leaf_objects = s.Array<int32_t>("leaf objects");
  parts->dist_offsets = s.Array<uint64_t>("distance offsets");
  parts->door_dists = s.Array<double>("door-object distances");
  parts->dfs_prefix = s.Array<uint32_t>("dfs prefix sums");
}

// ---------------------------------------------------------------------------
// v1 container.
// ---------------------------------------------------------------------------

void AppendSectionV1(Writer& out, uint32_t tag, const Writer& payload) {
  out.U32(tag);
  out.U64(payload.size());
  out.U32(Crc32(payload.buffer().data(), payload.size()));
  out.Bytes(payload.buffer().data(), payload.size());
}

std::vector<uint8_t> EncodeSnapshotV1(const Snapshot& snapshot) {
  Writer out;
  out.Bytes(kMagic, sizeof(kMagic));
  out.U32(kLegacyFormatVersion);
  out.U32(0);  // reserved

  Writer section;
  EncodeVenue(section, snapshot.venue);
  AppendSectionV1(out, kTagVenue, section);

  section = Writer();
  EncodeGraphV1(section, snapshot.graph);
  AppendSectionV1(out, kTagGraph, section);

  section = Writer();
  EncodeTreeV1(section, snapshot.tree);
  AppendSectionV1(out, kTagTree, section);

  section = Writer();
  EncodeVipV1(section, snapshot.vip);
  AppendSectionV1(out, kTagVip, section);

  section = Writer();
  EncodeObjectsV1(section, snapshot.objects);
  AppendSectionV1(out, kTagObjects, section);

  if (snapshot.keywords.has_value()) {
    section = Writer();
    EncodeKeywords(section, *snapshot.keywords);
    AppendSectionV1(out, kTagKeywords, section);
  }

  section = Writer();
  EncodeEngineOptions(section, snapshot.query_options);
  AppendSectionV1(out, kTagEngineOptions, section);

  return out.TakeBuffer();
}

struct SeenSections {
  bool venue = false, graph = false, tree = false;
  bool vip = false, objects = false, options = false;

  Status CheckComplete() const {
    const struct {
      bool seen;
      const char* name;
    } required[] = {{venue, "VENU"},     {graph, "GRPH"}, {tree, "TREE"},
                    {vip, "VIPX"},       {objects, "OBJX"},
                    {options, "ENGO"}};
    for (const auto& section : required) {
      if (!section.seen) {
        return Status::Error(std::string("snapshot is missing section '") +
                             section.name + "'");
      }
    }
    return Status::Ok();
  }
};

Status DecodeSnapshotV1(Reader& header, Snapshot* out) {
  header.U32();  // reserved
  SeenSections seen;

  while (header.ok() && header.remaining() > 0) {
    if (header.remaining() < 16) {
      return Status::Error("truncated section header at offset " +
                           std::to_string(header.position()));
    }
    const uint32_t tag = header.U32();
    const uint64_t size = header.U64();
    const uint32_t crc = header.U32();
    if (size > header.remaining()) {
      return Status::Error("truncated: section '" + TagName(tag) +
                           "' claims " + std::to_string(size) +
                           " bytes but only " +
                           std::to_string(header.remaining()) + " remain");
    }
    const Span<const uint8_t> payload = header.Raw(size);
    if (Crc32(payload.data(), payload.size()) != crc) {
      return Status::Error("checksum mismatch in section '" + TagName(tag) +
                           "' (corrupted snapshot)");
    }
    Reader r(payload);
    bool* seen_flag = nullptr;
    switch (tag) {
      case kTagVenue:
        seen_flag = &seen.venue;
        DecodeVenue(r, &out->venue);
        break;
      case kTagGraph:
        seen_flag = &seen.graph;
        DecodeGraphV1(r, &out->graph);
        break;
      case kTagTree:
        seen_flag = &seen.tree;
        DecodeTreeV1(r, &out->tree);
        break;
      case kTagVip:
        seen_flag = &seen.vip;
        DecodeVipV1(r, &out->vip);
        break;
      case kTagObjects:
        seen_flag = &seen.objects;
        DecodeObjectsV1(r, &out->objects);
        break;
      case kTagKeywords:
        if (out->keywords.has_value()) {
          return Status::Error("duplicate section 'KWIX'");
        }
        out->keywords.emplace();
        DecodeKeywords(r, &*out->keywords);
        break;
      case kTagEngineOptions:
        seen_flag = &seen.options;
        DecodeEngineOptions(r, &out->query_options);
        break;
      default:
        return Status::Error("unknown section '" + TagName(tag) +
                             "' in snapshot");
    }
    if (seen_flag != nullptr) {
      if (*seen_flag) {
        return Status::Error("duplicate section '" + TagName(tag) + "'");
      }
      *seen_flag = true;
    }
    if (!r.ok()) {
      return Status::Error("section '" + TagName(tag) + "': " + r.error());
    }
    if (r.remaining() != 0) {
      return Status::Error("section '" + TagName(tag) + "' has " +
                           std::to_string(r.remaining()) +
                           " trailing bytes");
    }
  }

  return seen.CheckComplete();
}

// ---------------------------------------------------------------------------
// v2 container.
// ---------------------------------------------------------------------------

constexpr size_t kV2HeaderBytes = 16;   // magic + version + section count
constexpr size_t kV2TocEntryBytes = 24;  // tag + crc + offset + size
// Far above the 7 defined sections; a larger count means a damaged header.
constexpr uint32_t kV2MaxSections = 64;

std::vector<uint8_t> EncodeSnapshotV2(const Snapshot& snapshot) {
  struct Section {
    uint32_t tag;
    Writer payload;
  };
  std::vector<Section> sections;
  const auto add = [&sections](uint32_t tag) -> Writer& {
    sections.push_back(Section{tag, Writer()});
    return sections.back().payload;
  };

  EncodeVenue(add(kTagVenue), snapshot.venue);
  EncodeGraphV2(add(kTagGraph), snapshot.graph);
  EncodeTreeV2(add(kTagTree), snapshot.tree);
  EncodeVipV2(add(kTagVip), snapshot.vip);
  EncodeObjectsV2(add(kTagObjects), snapshot.objects);
  if (snapshot.keywords.has_value()) {
    EncodeKeywords(add(kTagKeywords), *snapshot.keywords);
  }
  EncodeEngineOptions(add(kTagEngineOptions), snapshot.query_options);

  // Pad every payload to a multiple of 8 so the sequentially packed
  // payload offsets all stay 8-aligned (the pad is part of the payload and
  // therefore CRC-covered).
  for (Section& s : sections) PadTo8(s.payload);

  Writer out;
  out.Bytes(kMagic, sizeof(kMagic));
  out.U32(kFormatVersion);
  out.U32(static_cast<uint32_t>(sections.size()));
  uint64_t offset = kV2HeaderBytes + kV2TocEntryBytes * sections.size();
  VIPTREE_CHECK(offset % 8 == 0);
  for (const Section& s : sections) {
    out.U32(s.tag);
    out.U32(Crc32(s.payload.buffer().data(), s.payload.size()));
    out.U64(offset);
    out.U64(s.payload.size());
    offset += s.payload.size();
  }
  for (const Section& s : sections) {
    out.Bytes(s.payload.buffer().data(), s.payload.size());
  }
  return out.TakeBuffer();
}

Status DecodeSnapshotV2(Span<const uint8_t> bytes, Reader& header,
                        Snapshot* out, const SnapshotReadOptions& options) {
  const uint32_t num_sections = header.U32();
  if (num_sections > kV2MaxSections) {
    return Status::Error("implausible section count " +
                         std::to_string(num_sections) +
                         " (corrupted snapshot header)");
  }
  const size_t toc_end =
      kV2HeaderBytes + kV2TocEntryBytes * size_t{num_sections};
  if (bytes.size() < toc_end) {
    return Status::Error(
        "file truncated below the TOC (" + std::to_string(bytes.size()) +
        " bytes, TOC needs " + std::to_string(toc_end) + ")");
  }

  SeenSections seen;
  for (uint32_t i = 0; i < num_sections; ++i) {
    const uint32_t tag = header.U32();
    const uint32_t crc = header.U32();
    const uint64_t offset = header.U64();
    const uint64_t size = header.U64();
    const std::string name = TagName(tag);
    if (offset % 8 != 0) {
      return Status::Error("misaligned section offset " +
                           std::to_string(offset) + " for '" + name + "'");
    }
    if (offset < toc_end || offset > bytes.size() ||
        size > bytes.size() - offset) {
      return Status::Error("truncated: section '" + name + "' claims bytes [" +
                           std::to_string(offset) + ", " +
                           std::to_string(offset + size) + ") of a " +
                           std::to_string(bytes.size()) + "-byte file");
    }
    const Span<const uint8_t> payload{bytes.data() + offset,
                                      static_cast<size_t>(size)};
    if (options.verify_checksums &&
        Crc32(payload.data(), payload.size()) != crc) {
      return Status::Error("checksum mismatch in section '" + name +
                           "' (corrupted snapshot)");
    }

    SectionReader s(payload, options.allow_alias, &out->aliased);
    bool* seen_flag = nullptr;
    switch (tag) {
      case kTagVenue:
        seen_flag = &seen.venue;
        DecodeVenue(s.r(), &out->venue);
        break;
      case kTagGraph:
        seen_flag = &seen.graph;
        DecodeGraphV2(s, &out->graph);
        break;
      case kTagTree:
        seen_flag = &seen.tree;
        DecodeTreeV2(s, &out->tree);
        break;
      case kTagVip:
        seen_flag = &seen.vip;
        DecodeVipV2(s, &out->vip);
        break;
      case kTagObjects:
        seen_flag = &seen.objects;
        DecodeObjectsV2(s, &out->objects);
        break;
      case kTagKeywords:
        if (out->keywords.has_value()) {
          return Status::Error("duplicate section 'KWIX'");
        }
        out->keywords.emplace();
        DecodeKeywords(s.r(), &*out->keywords);
        break;
      case kTagEngineOptions:
        seen_flag = &seen.options;
        DecodeEngineOptions(s.r(), &out->query_options);
        break;
      default:
        return Status::Error("unknown section '" + name + "' in snapshot");
    }
    if (seen_flag != nullptr) {
      if (*seen_flag) {
        return Status::Error("duplicate section '" + name + "'");
      }
      *seen_flag = true;
    }
    if (!s.r().ok()) {
      return Status::Error("section '" + name + "': " + s.r().error());
    }
    // Up to 7 bytes of CRC-covered end padding are part of the format;
    // anything more is a framing error.
    if (s.r().remaining() >= 8) {
      return Status::Error("section '" + name + "' has " +
                           std::to_string(s.r().remaining()) +
                           " trailing bytes");
    }
  }

  return seen.CheckComplete();
}

}  // namespace

// ---------------------------------------------------------------------------
// Container encode/decode.
// ---------------------------------------------------------------------------

std::vector<uint8_t> EncodeSnapshot(const Snapshot& snapshot,
                                    const SnapshotWriteOptions& options) {
  VIPTREE_CHECK_MSG(options.version == kFormatVersion ||
                        options.version == kLegacyFormatVersion,
                    "unsupported snapshot write version");
  return options.version == kLegacyFormatVersion
             ? EncodeSnapshotV1(snapshot)
             : EncodeSnapshotV2(snapshot);
}

Status DecodeSnapshot(Span<const uint8_t> bytes, Snapshot* out,
                      const SnapshotReadOptions& options) {
  Reader header(bytes);
  if (bytes.size() < sizeof(kMagic) + 8) {
    return Status::Error("not a VIP-Tree snapshot (file too small)");
  }
  const Span<const uint8_t> magic = header.Raw(sizeof(kMagic));
  if (std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Error("not a VIP-Tree snapshot (bad magic)");
  }
  const uint32_t version = header.U32();
  out->format_version = version;
  out->aliased = false;
  if (version == kLegacyFormatVersion) {
    return DecodeSnapshotV1(header, out);
  }
  if (version == kFormatVersion) {
    return DecodeSnapshotV2(bytes, header, out, options);
  }
  return Status::Error(
      "unsupported snapshot format version " + std::to_string(version) +
      " (this build reads versions " + std::to_string(kLegacyFormatVersion) +
      " and " + std::to_string(kFormatVersion) + ")");
}

Status WriteSnapshotFile(const std::string& path, const Snapshot& snapshot,
                         const SnapshotWriteOptions& options) {
  const std::vector<uint8_t> bytes = EncodeSnapshot(snapshot, options);
  return WriteFileBytes(path, bytes);
}

Status ReadSnapshotFile(const std::string& path, Snapshot* out) {
  std::vector<uint8_t> bytes;
  Status status = ReadFileBytes(path, &bytes);
  if (!status.ok()) return status;
  return DecodeSnapshot(bytes, out);
}

Status VerifySnapshotFile(const std::string& path,
                          SnapshotVerifyReport* report) {
  std::vector<uint8_t> bytes;
  Status status = ReadFileBytes(path, &bytes);
  if (!status.ok()) return status;

  if (bytes.size() < sizeof(kMagic) + 8) {
    return Status::Error("not a VIP-Tree snapshot (file too small)");
  }
  Reader header(bytes);
  const Span<const uint8_t> magic = header.Raw(sizeof(kMagic));
  if (std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Error("not a VIP-Tree snapshot (bad magic)");
  }
  const uint32_t version = header.U32();
  if (version != kFormatVersion && version != kLegacyFormatVersion) {
    return Status::Error(
        "unsupported snapshot format version " + std::to_string(version) +
        " (this build reads versions " +
        std::to_string(kLegacyFormatVersion) + " and " +
        std::to_string(kFormatVersion) + ")");
  }
  if (report != nullptr) {
    report->format_version = version;
    report->file_bytes = bytes.size();
    report->sections.clear();
  }

  // Walk the framing only — section boundaries and stored CRCs — and
  // recompute each payload checksum; nothing is decoded. This reproduces
  // exactly the per-section validation verify_checksums=true would run at
  // load time, made a one-time install step instead.
  std::string first_mismatch;
  const auto check = [&](uint32_t tag, uint32_t crc,
                         Span<const uint8_t> payload) {
    const bool ok = Crc32(payload.data(), payload.size()) == crc;
    if (!ok && first_mismatch.empty()) {
      first_mismatch = "checksum mismatch in section '" + TagName(tag) +
                       "' (corrupted snapshot)";
    }
    if (report != nullptr) {
      report->sections.push_back(
          SnapshotSectionCheck{TagName(tag), payload.size(), crc, ok});
    }
  };

  if (version == kLegacyFormatVersion) {
    header.U32();  // reserved
    while (header.ok() && header.remaining() > 0) {
      if (header.remaining() < 16) {
        return Status::Error("truncated section header at offset " +
                             std::to_string(header.position()));
      }
      const uint32_t tag = header.U32();
      const uint64_t size = header.U64();
      const uint32_t crc = header.U32();
      if (size > header.remaining()) {
        return Status::Error("truncated: section '" + TagName(tag) +
                             "' claims " + std::to_string(size) +
                             " bytes but only " +
                             std::to_string(header.remaining()) + " remain");
      }
      check(tag, crc, header.Raw(size));
    }
  } else {
    const uint32_t num_sections = header.U32();
    if (num_sections > kV2MaxSections) {
      return Status::Error("implausible section count " +
                           std::to_string(num_sections) +
                           " (corrupted snapshot header)");
    }
    const size_t toc_end =
        kV2HeaderBytes + kV2TocEntryBytes * size_t{num_sections};
    if (bytes.size() < toc_end) {
      return Status::Error(
          "file truncated below the TOC (" + std::to_string(bytes.size()) +
          " bytes, TOC needs " + std::to_string(toc_end) + ")");
    }
    for (uint32_t i = 0; i < num_sections; ++i) {
      const uint32_t tag = header.U32();
      const uint32_t crc = header.U32();
      const uint64_t offset = header.U64();
      const uint64_t size = header.U64();
      if (offset % 8 != 0) {
        return Status::Error("misaligned section offset " +
                             std::to_string(offset) + " for '" +
                             TagName(tag) + "'");
      }
      if (offset < toc_end || offset > bytes.size() ||
          size > bytes.size() - offset) {
        return Status::Error("truncated: section '" + TagName(tag) +
                             "' claims bytes [" + std::to_string(offset) +
                             ", " + std::to_string(offset + size) + ") of a " +
                             std::to_string(bytes.size()) + "-byte file");
      }
      check(tag, crc,
            Span<const uint8_t>{bytes.data() + offset,
                                static_cast<size_t>(size)});
    }
  }

  if (!first_mismatch.empty()) return Status::Error(first_mismatch);
  return Status::Ok();
}

}  // namespace io
}  // namespace viptree
