#include "io/snapshot.h"

#include <cstring>
#include <utility>

namespace viptree {
namespace io {

namespace {

// ---------------------------------------------------------------------------
// Section framing.
// ---------------------------------------------------------------------------

constexpr char kMagic[8] = {'V', 'I', 'P', 'T', 'S', 'N', 'A', 'P'};

constexpr uint32_t Tag(char a, char b, char c, char d) {
  return uint32_t(uint8_t(a)) | uint32_t(uint8_t(b)) << 8 |
         uint32_t(uint8_t(c)) << 16 | uint32_t(uint8_t(d)) << 24;
}

constexpr uint32_t kTagVenue = Tag('V', 'E', 'N', 'U');
constexpr uint32_t kTagGraph = Tag('G', 'R', 'P', 'H');
constexpr uint32_t kTagTree = Tag('T', 'R', 'E', 'E');
constexpr uint32_t kTagVip = Tag('V', 'I', 'P', 'X');
constexpr uint32_t kTagObjects = Tag('O', 'B', 'J', 'X');
constexpr uint32_t kTagKeywords = Tag('K', 'W', 'I', 'X');
constexpr uint32_t kTagEngineOptions = Tag('E', 'N', 'G', 'O');

std::string TagName(uint32_t tag) {
  std::string name(4, '?');
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>((tag >> (8 * i)) & 0xFF);
    name[i] = (c >= 0x20 && c < 0x7F) ? c : '?';
  }
  return name;
}

void AppendSection(Writer& out, uint32_t tag, const Writer& payload) {
  out.U32(tag);
  out.U64(payload.size());
  out.U32(Crc32(payload.buffer().data(), payload.size()));
  out.Bytes(payload.buffer().data(), payload.size());
}

// ---------------------------------------------------------------------------
// Field helpers.
// ---------------------------------------------------------------------------

void WritePoint(Writer& w, const Point& p) {
  w.F64(p.x);
  w.F64(p.y);
  w.F64(p.z);
}

Point ReadPoint(Reader& r) {
  Point p;
  p.x = r.F64();
  p.y = r.F64();
  p.z = r.F64();
  return p;
}

void WriteI32Vec(Writer& w, const std::vector<int32_t>& v) {
  w.U64(v.size());
  w.I32Array(v);
}

std::vector<int32_t> ReadI32Vec(Reader& r, const char* what) {
  const uint64_t n = r.ArraySize(4, what);
  std::vector<int32_t> v(n);
  r.I32Array(v.data(), n);
  return v;
}

void WriteU32Vec(Writer& w, const std::vector<uint32_t>& v) {
  w.U64(v.size());
  w.U32Array(v);
}

std::vector<uint32_t> ReadU32Vec(Reader& r, const char* what) {
  const uint64_t n = r.ArraySize(4, what);
  std::vector<uint32_t> v(n);
  r.U32Array(v.data(), n);
  return v;
}

void WriteU64Vec(Writer& w, const std::vector<uint64_t>& v) {
  w.U64(v.size());
  w.U64Array(v);
}

std::vector<uint64_t> ReadU64Vec(Reader& r, const char* what) {
  const uint64_t n = r.ArraySize(8, what);
  std::vector<uint64_t> v(n);
  r.U64Array(v.data(), n);
  return v;
}

void WriteF64Vec(Writer& w, const std::vector<double>& v) {
  w.U64(v.size());
  w.F64Array(v);
}

std::vector<double> ReadF64Vec(Reader& r, const char* what) {
  const uint64_t n = r.ArraySize(8, what);
  std::vector<double> v(n);
  r.F64Array(v.data(), n);
  return v;
}

void WriteMatrixF32(Writer& w, const FlatMatrix<float>& m) {
  w.U64(m.rows());
  w.U64(m.cols());
  w.F32Array(m.raw());
}

// Division-based bounds check so a corrupted rows*cols cannot overflow into
// a bogus small allocation.
bool MatrixShapeFits(Reader& r, uint64_t rows, uint64_t cols,
                     size_t element_size, const char* what) {
  if (!r.ok()) return false;
  if (rows != 0 && cols > (r.remaining() / element_size) / rows) {
    r.Fail(std::string("truncated: ") + what + " claims " +
           std::to_string(rows) + "x" + std::to_string(cols) +
           " cells but only " + std::to_string(r.remaining()) +
           " bytes remain");
    return false;
  }
  return true;
}

FlatMatrix<float> ReadMatrixF32(Reader& r, const char* what) {
  const uint64_t rows = r.U64();
  const uint64_t cols = r.U64();
  if (!MatrixShapeFits(r, rows, cols, 4, what)) return {};
  const uint64_t n = rows * cols;
  std::vector<float> data(n);
  r.F32Array(data.data(), n);
  if (!r.ok()) return {};
  return FlatMatrix<float>(rows, cols, std::move(data));
}

void WriteMatrixI32(Writer& w, const FlatMatrix<int32_t>& m) {
  w.U64(m.rows());
  w.U64(m.cols());
  w.I32Array(m.raw());
}

FlatMatrix<int32_t> ReadMatrixI32(Reader& r, const char* what) {
  const uint64_t rows = r.U64();
  const uint64_t cols = r.U64();
  if (!MatrixShapeFits(r, rows, cols, 4, what)) return {};
  const uint64_t n = rows * cols;
  std::vector<int32_t> data(n);
  r.I32Array(data.data(), n);
  if (!r.ok()) return {};
  return FlatMatrix<int32_t>(rows, cols, std::move(data));
}

// ---------------------------------------------------------------------------
// Per-section encoders/decoders.
// ---------------------------------------------------------------------------

void EncodeVenue(Writer& w, const Venue::Parts& parts) {
  w.I32(parts.beta);
  w.U64(parts.partitions.size());
  for (const Partition& p : parts.partitions) {
    w.I32(p.id);
    w.I32(p.level);
    w.I32(p.zone);
    w.U8(static_cast<uint8_t>(p.use));
    w.F64(p.cost_scale);
    WritePoint(w, p.centroid);
    w.String(p.name);
  }
  w.U64(parts.doors.size());
  for (const Door& d : parts.doors) {
    w.I32(d.id);
    w.I32(d.partition_a);
    w.I32(d.partition_b);
    WritePoint(w, d.position);
  }
}

void DecodeVenue(Reader& r, Venue::Parts* parts) {
  parts->beta = r.I32();
  const uint64_t num_partitions = r.ArraySize(41, "venue partitions");
  parts->partitions.resize(num_partitions);
  for (Partition& p : parts->partitions) {
    p.id = r.I32();
    p.level = r.I32();
    p.zone = r.I32();
    const uint8_t use = r.U8();
    if (use > static_cast<uint8_t>(PartitionUse::kOther)) {
      r.Fail("partition has unknown use tag " + std::to_string(use));
      return;
    }
    p.use = static_cast<PartitionUse>(use);
    p.cost_scale = r.F64();
    p.centroid = ReadPoint(r);
    p.name = r.String();
  }
  const uint64_t num_doors = r.ArraySize(36, "venue doors");
  parts->doors.resize(num_doors);
  for (Door& d : parts->doors) {
    d.id = r.I32();
    d.partition_a = r.I32();
    d.partition_b = r.I32();
    d.position = ReadPoint(r);
  }
}

void EncodeGraph(Writer& w, const D2DGraph::Parts& parts) {
  w.U64(parts.num_vertices);
  WriteU64Vec(w, parts.offsets);
  w.U64(parts.edges.size());
  for (const D2DEdge& e : parts.edges) {
    w.I32(e.to);
    w.F32(e.weight);
    w.I32(e.via);
  }
}

void DecodeGraph(Reader& r, D2DGraph::Parts* parts) {
  parts->num_vertices = r.U64();
  parts->offsets = ReadU64Vec(r, "graph offsets");
  const uint64_t num_edges = r.ArraySize(12, "graph edges");
  parts->edges.resize(num_edges);
  for (D2DEdge& e : parts->edges) {
    e.to = r.I32();
    e.weight = r.F32();
    e.via = r.I32();
  }
}

void EncodeTree(Writer& w, const IPTree::Parts& parts) {
  w.U64(parts.nodes.size());
  for (const TreeNode& node : parts.nodes) {
    w.I32(node.id);
    w.I32(node.parent);
    w.I32(node.level);
    WriteI32Vec(w, node.children);
    WriteI32Vec(w, node.partitions);
    WriteI32Vec(w, node.doors);
    WriteI32Vec(w, node.access_doors);
    WriteI32Vec(w, node.matrix_doors);
    WriteMatrixF32(w, node.dist);
    WriteMatrixI32(w, node.next_hop);
    w.U32(node.leaf_begin);
    w.U32(node.leaf_end);
  }
  w.I32(parts.root);
  w.U64(parts.num_leaves);
  WriteI32Vec(w, parts.leaf_of_partition);
  w.U64(parts.door_leaves.size());
  for (const auto& entries : parts.door_leaves) {
    for (const IPTree::DoorLeafEntry& e : entries) {
      w.I32(e.leaf);
      w.U32(e.row);
    }
  }
  w.U64(parts.is_access_door.size());
  w.Bytes(parts.is_access_door.data(), parts.is_access_door.size());
  WriteU32Vec(w, parts.superior_offsets);
  WriteI32Vec(w, parts.superior_doors);
}

void DecodeTree(Reader& r, IPTree::Parts* parts) {
  const uint64_t num_nodes = r.ArraySize(60, "tree nodes");
  parts->nodes.resize(num_nodes);
  for (TreeNode& node : parts->nodes) {
    node.id = r.I32();
    node.parent = r.I32();
    node.level = r.I32();
    node.children = ReadI32Vec(r, "node children");
    node.partitions = ReadI32Vec(r, "node partitions");
    node.doors = ReadI32Vec(r, "node doors");
    node.access_doors = ReadI32Vec(r, "node access doors");
    node.matrix_doors = ReadI32Vec(r, "node matrix doors");
    node.dist = ReadMatrixF32(r, "node distance matrix");
    node.next_hop = ReadMatrixI32(r, "node next-hop matrix");
    node.leaf_begin = r.U32();
    node.leaf_end = r.U32();
    if (!r.ok()) return;
  }
  parts->root = r.I32();
  parts->num_leaves = r.U64();
  parts->leaf_of_partition = ReadI32Vec(r, "leaf_of_partition");
  const uint64_t num_doors = r.ArraySize(16, "door_leaves");
  parts->door_leaves.resize(num_doors);
  for (auto& entries : parts->door_leaves) {
    for (IPTree::DoorLeafEntry& e : entries) {
      e.leaf = r.I32();
      e.row = r.U32();
    }
  }
  const uint64_t num_flags = r.ArraySize(1, "is_access_door");
  parts->is_access_door.resize(num_flags);
  const Span<const uint8_t> flags = r.Raw(num_flags);
  if (r.ok() && num_flags != 0) {
    std::memcpy(parts->is_access_door.data(), flags.data(), num_flags);
  }
  parts->superior_offsets = ReadU32Vec(r, "superior offsets");
  parts->superior_doors = ReadI32Vec(r, "superior doors");
}

void EncodeVip(Writer& w, const VIPTree::Parts& parts) {
  w.U64(parts.ext.size());
  for (const VIPTree::ExtMatrix& ext : parts.ext) {
    WriteI32Vec(w, ext.doors);
    WriteMatrixF32(w, ext.dist);
    WriteMatrixI32(w, ext.next_hop);
  }
}

void DecodeVip(Reader& r, VIPTree::Parts* parts) {
  const uint64_t num_nodes = r.ArraySize(40, "extended matrices");
  parts->ext.resize(num_nodes);
  for (VIPTree::ExtMatrix& ext : parts->ext) {
    ext.doors = ReadI32Vec(r, "extended matrix doors");
    ext.dist = ReadMatrixF32(r, "extended distance matrix");
    ext.next_hop = ReadMatrixI32(r, "extended next-hop matrix");
    if (!r.ok()) return;
  }
}

void EncodeObjects(Writer& w, const ObjectIndex::Parts& parts) {
  w.U64(parts.objects.size());
  for (const IndoorPoint& obj : parts.objects) {
    w.I32(obj.partition);
    WritePoint(w, obj.position);
  }
  WriteU32Vec(w, parts.leaf_object_offsets);
  WriteI32Vec(w, parts.leaf_objects);
  WriteU64Vec(w, parts.dist_offsets);
  WriteF64Vec(w, parts.door_dists);
  WriteU32Vec(w, parts.dfs_prefix);
}

void DecodeObjects(Reader& r, ObjectIndex::Parts* parts) {
  const uint64_t num_objects = r.ArraySize(28, "objects");
  parts->objects.resize(num_objects);
  for (IndoorPoint& obj : parts->objects) {
    obj.partition = r.I32();
    obj.position = ReadPoint(r);
  }
  parts->leaf_object_offsets = ReadU32Vec(r, "leaf object offsets");
  parts->leaf_objects = ReadI32Vec(r, "leaf objects");
  parts->dist_offsets = ReadU64Vec(r, "distance offsets");
  parts->door_dists = ReadF64Vec(r, "door-object distances");
  parts->dfs_prefix = ReadU32Vec(r, "dfs prefix sums");
}

void EncodeKeywords(Writer& w, const KeywordIndex::Parts& parts) {
  w.U64(parts.keywords_by_id.size());
  for (const std::string& word : parts.keywords_by_id) w.String(word);
  w.U64(parts.object_keywords.size());
  for (const auto& list : parts.object_keywords) WriteI32Vec(w, list);
  w.U64(parts.node_keywords.size());
  for (const auto& list : parts.node_keywords) WriteI32Vec(w, list);
}

void DecodeKeywords(Reader& r, KeywordIndex::Parts* parts) {
  const uint64_t num_words = r.ArraySize(8, "keyword dictionary");
  parts->keywords_by_id.resize(num_words);
  for (std::string& word : parts->keywords_by_id) word = r.String();
  const uint64_t num_objects = r.ArraySize(8, "object keyword lists");
  parts->object_keywords.resize(num_objects);
  for (auto& list : parts->object_keywords) {
    list = ReadI32Vec(r, "object keyword list");
  }
  const uint64_t num_nodes = r.ArraySize(8, "node keyword lists");
  parts->node_keywords.resize(num_nodes);
  for (auto& list : parts->node_keywords) {
    list = ReadI32Vec(r, "node keyword list");
  }
}

void EncodeEngineOptions(Writer& w, const DistanceQueryOptions& options) {
  w.U8(options.use_superior_doors ? 1 : 0);
}

void DecodeEngineOptions(Reader& r, DistanceQueryOptions* options) {
  options->use_superior_doors = r.U8() != 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Container encode/decode.
// ---------------------------------------------------------------------------

std::vector<uint8_t> EncodeSnapshot(const Snapshot& snapshot) {
  Writer out;
  out.Bytes(kMagic, sizeof(kMagic));
  out.U32(kFormatVersion);
  out.U32(0);  // reserved

  Writer section;
  EncodeVenue(section, snapshot.venue);
  AppendSection(out, kTagVenue, section);

  section = Writer();
  EncodeGraph(section, snapshot.graph);
  AppendSection(out, kTagGraph, section);

  section = Writer();
  EncodeTree(section, snapshot.tree);
  AppendSection(out, kTagTree, section);

  section = Writer();
  EncodeVip(section, snapshot.vip);
  AppendSection(out, kTagVip, section);

  section = Writer();
  EncodeObjects(section, snapshot.objects);
  AppendSection(out, kTagObjects, section);

  if (snapshot.keywords.has_value()) {
    section = Writer();
    EncodeKeywords(section, *snapshot.keywords);
    AppendSection(out, kTagKeywords, section);
  }

  section = Writer();
  EncodeEngineOptions(section, snapshot.query_options);
  AppendSection(out, kTagEngineOptions, section);

  return out.TakeBuffer();
}

Status DecodeSnapshot(Span<const uint8_t> bytes, Snapshot* out) {
  Reader header(bytes);
  if (bytes.size() < sizeof(kMagic) + 8) {
    return Status::Error("not a VIP-Tree snapshot (file too small)");
  }
  const Span<const uint8_t> magic = header.Raw(sizeof(kMagic));
  if (std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Error("not a VIP-Tree snapshot (bad magic)");
  }
  const uint32_t version = header.U32();
  if (version != kFormatVersion) {
    return Status::Error(
        "unsupported snapshot format version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kFormatVersion) + ")");
  }
  header.U32();  // reserved

  bool seen_venue = false, seen_graph = false, seen_tree = false;
  bool seen_vip = false, seen_objects = false, seen_options = false;

  while (header.ok() && header.remaining() > 0) {
    if (header.remaining() < 16) {
      return Status::Error("truncated section header at offset " +
                           std::to_string(header.position()));
    }
    const uint32_t tag = header.U32();
    const uint64_t size = header.U64();
    const uint32_t crc = header.U32();
    if (size > header.remaining()) {
      return Status::Error("truncated: section '" + TagName(tag) +
                           "' claims " + std::to_string(size) +
                           " bytes but only " +
                           std::to_string(header.remaining()) + " remain");
    }
    const Span<const uint8_t> payload = header.Raw(size);
    if (Crc32(payload.data(), payload.size()) != crc) {
      return Status::Error("checksum mismatch in section '" + TagName(tag) +
                           "' (corrupted snapshot)");
    }
    Reader r(payload);
    bool* seen = nullptr;
    switch (tag) {
      case kTagVenue:
        seen = &seen_venue;
        DecodeVenue(r, &out->venue);
        break;
      case kTagGraph:
        seen = &seen_graph;
        DecodeGraph(r, &out->graph);
        break;
      case kTagTree:
        seen = &seen_tree;
        DecodeTree(r, &out->tree);
        break;
      case kTagVip:
        seen = &seen_vip;
        DecodeVip(r, &out->vip);
        break;
      case kTagObjects:
        seen = &seen_objects;
        DecodeObjects(r, &out->objects);
        break;
      case kTagKeywords:
        if (out->keywords.has_value()) {
          return Status::Error("duplicate section 'KWIX'");
        }
        out->keywords.emplace();
        DecodeKeywords(r, &*out->keywords);
        break;
      case kTagEngineOptions:
        seen = &seen_options;
        DecodeEngineOptions(r, &out->query_options);
        break;
      default:
        return Status::Error("unknown section '" + TagName(tag) +
                             "' in snapshot");
    }
    if (seen != nullptr) {
      if (*seen) {
        return Status::Error("duplicate section '" + TagName(tag) + "'");
      }
      *seen = true;
    }
    if (!r.ok()) {
      return Status::Error("section '" + TagName(tag) + "': " + r.error());
    }
    if (r.remaining() != 0) {
      return Status::Error("section '" + TagName(tag) + "' has " +
                           std::to_string(r.remaining()) +
                           " trailing bytes");
    }
  }

  const struct {
    bool seen;
    const char* name;
  } required[] = {{seen_venue, "VENU"}, {seen_graph, "GRPH"},
                  {seen_tree, "TREE"},  {seen_vip, "VIPX"},
                  {seen_objects, "OBJX"}, {seen_options, "ENGO"}};
  for (const auto& section : required) {
    if (!section.seen) {
      return Status::Error(std::string("snapshot is missing section '") +
                           section.name + "'");
    }
  }
  return Status::Ok();
}

Status WriteSnapshotFile(const std::string& path, const Snapshot& snapshot) {
  const std::vector<uint8_t> bytes = EncodeSnapshot(snapshot);
  return WriteFileBytes(path, bytes);
}

Status ReadSnapshotFile(const std::string& path, Snapshot* out) {
  std::vector<uint8_t> bytes;
  Status status = ReadFileBytes(path, &bytes);
  if (!status.ok()) return status;
  return DecodeSnapshot(bytes, out);
}

}  // namespace io
}  // namespace viptree
