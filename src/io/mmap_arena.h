// MmapArena: an immutable byte arena backing a zero-copy snapshot load. On
// POSIX hosts the file is mapped read-only (MAP_PRIVATE), so standing up an
// engine touches only the pages the decoder actually reads —
// O(resident-pages) memory per venue, the property the multi-venue
// VenueRegistry relies on. Where mmap is unavailable (or fails, e.g. on a
// filesystem without mmap support) the arena falls back to a 64-byte-
// aligned heap buffer (common/aligned.h) filled by a plain read; callers
// cannot tell the difference except through mapped(). Either way data() is
// at least 64-byte aligned (page-aligned when mapped), so FlatMatrix rows
// aliased out of the arena are SIMD-loadable in both modes.
//
// Lifetime: Storage<T> views created over the arena's bytes do NOT keep it
// alive (common/storage.h); the owner of the views (engine::VenueBundle)
// must hold the arena for as long as any index aliases it.

#ifndef VIPTREE_IO_MMAP_ARENA_H_
#define VIPTREE_IO_MMAP_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/aligned.h"
#include "common/span.h"
#include "io/binary_io.h"

namespace viptree {
namespace io {

// Paging-behaviour hint for a mapped arena, applied at Map time (no effect
// on the heap fallback, which is always fully resident):
//   kNormal             — default kernel readahead.
//   kSequential         — aggressive readahead, early reclaim behind the
//                         cursor; the right hint for one-pass loads such as
//                         checksum verification followed by decode.
//   kRandom             — no readahead; the right hint for point-query
//                         serving, where touching one matrix row should not
//                         fault in its neighbours.
//   kDontneedOnRelease  — like kNormal, but the owner (VenueRegistry
//                         eviction) additionally calls DropResidentPages()
//                         when the venue leaves the working set, returning
//                         its RSS to the OS even while outstanding bundle
//                         references keep the mapping alive.
enum class MadvisePolicy : uint8_t {
  kNormal = 0,
  kSequential = 1,
  kRandom = 2,
  kDontneedOnRelease = 3,
};

class MmapArena {
 public:
  MmapArena() = default;
  ~MmapArena() { Release(); }

  MmapArena(MmapArena&& other) noexcept { *this = std::move(other); }
  MmapArena& operator=(MmapArena&& other) noexcept;

  MmapArena(const MmapArena&) = delete;
  MmapArena& operator=(const MmapArena&) = delete;

  // Maps `path` read-only into `out` (replacing its previous contents).
  // Falls back to a heap read when mmap is unavailable; pass
  // `allow_mmap = false` to force the heap path (benchmarks compare both).
  // Errors (missing file, directory, I/O failure) come back as a Status
  // with a human-readable message.
  static Status Map(const std::string& path, MmapArena* out,
                    bool allow_mmap = true,
                    MadvisePolicy policy = MadvisePolicy::kNormal);

  // The whole arena. data() is at least 64-byte aligned (page-aligned when
  // mapped, kIndexBufferAlign on the heap path), which lets the v2
  // snapshot decoder alias u64/f64 arrays in place and keeps them
  // SIMD-loadable.
  Span<const uint8_t> bytes() const { return {data_, size_}; }
  size_t size() const { return size_; }

  // True when the bytes are a file mapping (paged lazily), false for the
  // heap fallback (fully resident).
  bool mapped() const { return mapped_; }

  // The policy Map was called with (kNormal for a default-mapped arena).
  MadvisePolicy policy() const { return policy_; }

  // Returns the arena's resident file-backed pages to the OS
  // (madvise(MADV_DONTNEED) on the read-only private mapping — later
  // accesses transparently re-fault from the file). Returns the number of
  // bytes advised, 0 for heap-backed arenas or hosts without madvise.
  // Const because page residency is not logical state: the bytes read back
  // identical. Safe to call concurrently with readers — dropped pages
  // re-fault, they do not invalidate.
  size_t DropResidentPages() const;

 private:
  void Release();

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  MadvisePolicy policy_ = MadvisePolicy::kNormal;
  AlignedVector<uint8_t> heap_;  // fallback buffer, 64-byte aligned
};

}  // namespace io
}  // namespace viptree

#endif  // VIPTREE_IO_MMAP_ARENA_H_
