// MmapArena: an immutable, 8-byte-aligned byte arena backing a zero-copy
// snapshot load. On POSIX hosts the file is mapped read-only (MAP_PRIVATE),
// so standing up an engine touches only the pages the decoder actually
// reads — O(resident-pages) memory per venue, the property the multi-venue
// VenueRegistry relies on. Where mmap is unavailable (or fails, e.g. on a
// filesystem without mmap support) the arena falls back to a heap buffer
// filled by a plain read; callers cannot tell the difference except through
// mapped().
//
// Lifetime: Storage<T> views created over the arena's bytes do NOT keep it
// alive (common/storage.h); the owner of the views (engine::VenueBundle)
// must hold the arena for as long as any index aliases it.

#ifndef VIPTREE_IO_MMAP_ARENA_H_
#define VIPTREE_IO_MMAP_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/span.h"
#include "io/binary_io.h"

namespace viptree {
namespace io {

class MmapArena {
 public:
  MmapArena() = default;
  ~MmapArena() { Release(); }

  MmapArena(MmapArena&& other) noexcept { *this = std::move(other); }
  MmapArena& operator=(MmapArena&& other) noexcept;

  MmapArena(const MmapArena&) = delete;
  MmapArena& operator=(const MmapArena&) = delete;

  // Maps `path` read-only into `out` (replacing its previous contents).
  // Falls back to a heap read when mmap is unavailable; pass
  // `allow_mmap = false` to force the heap path (benchmarks compare both).
  // Errors (missing file, directory, I/O failure) come back as a Status
  // with a human-readable message.
  static Status Map(const std::string& path, MmapArena* out,
                    bool allow_mmap = true);

  // The whole arena. data() is at least 8-byte aligned (page-aligned when
  // mapped), which is what lets the v2 snapshot decoder alias u64/f64
  // arrays in place.
  Span<const uint8_t> bytes() const { return {data_, size_}; }
  size_t size() const { return size_; }

  // True when the bytes are a file mapping (paged lazily), false for the
  // heap fallback (fully resident).
  bool mapped() const { return mapped_; }

 private:
  void Release();

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::unique_ptr<uint64_t[]> heap_;  // uint64_t units => 8-byte alignment
};

}  // namespace io
}  // namespace viptree

#endif  // VIPTREE_IO_MMAP_ARENA_H_
