#include "io/mmap_arena.h"

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#if defined(_WIN32)
#define VIPTREE_HAS_MMAP 0
#else
#define VIPTREE_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace viptree {
namespace io {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::Error(what + " '" + path + "': " + std::strerror(errno));
}

#if VIPTREE_HAS_MMAP
// Best-effort readahead hint; a kernel that rejects the advice changes
// performance, not correctness, so failures are deliberately ignored.
void ApplyMapTimeAdvice(void* addr, size_t size, MadvisePolicy policy) {
  switch (policy) {
    case MadvisePolicy::kSequential:
      ::posix_madvise(addr, size, POSIX_MADV_SEQUENTIAL);
      break;
    case MadvisePolicy::kRandom:
      ::posix_madvise(addr, size, POSIX_MADV_RANDOM);
      break;
    case MadvisePolicy::kNormal:
    case MadvisePolicy::kDontneedOnRelease:
      break;  // default kernel readahead
  }
}
#endif

}  // namespace

MmapArena& MmapArena::operator=(MmapArena&& other) noexcept {
  if (this != &other) {
    Release();
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    policy_ = other.policy_;
    heap_ = std::move(other.heap_);
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
    other.policy_ = MadvisePolicy::kNormal;
  }
  return *this;
}

void MmapArena::Release() {
#if VIPTREE_HAS_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  policy_ = MadvisePolicy::kNormal;
  heap_.clear();
  heap_.shrink_to_fit();
}

size_t MmapArena::DropResidentPages() const {
#if VIPTREE_HAS_MMAP && defined(MADV_DONTNEED)
  if (!mapped_ || data_ == nullptr || size_ == 0) return 0;
  // Raw madvise, not posix_madvise: glibc defines POSIX_MADV_DONTNEED as a
  // no-op, while MADV_DONTNEED actually discards the page-cache copies.
  // On a read-only MAP_PRIVATE file mapping this is loss-free — the next
  // access re-faults the page from the file.
  if (::madvise(const_cast<uint8_t*>(data_), size_, MADV_DONTNEED) != 0) {
    return 0;
  }
  return size_;
#else
  return 0;
#endif
}

Status MmapArena::Map(const std::string& path, MmapArena* out, bool allow_mmap,
                      MadvisePolicy policy) {
  out->Release();
#if VIPTREE_HAS_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Errno("cannot open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = Errno("cannot stat", path);
    ::close(fd);
    return status;
  }
  if (S_ISDIR(st.st_mode)) {
    ::close(fd);
    return Status::Error("cannot open '" + path + "': is a directory");
  }
  const size_t size = static_cast<size_t>(st.st_size);

  if (allow_mmap && size > 0) {
    void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapping != MAP_FAILED) {
      ::close(fd);
      ApplyMapTimeAdvice(mapping, size, policy);
      out->data_ = static_cast<const uint8_t*>(mapping);
      out->size_ = size;
      out->mapped_ = true;
      out->policy_ = policy;
      return Status::Ok();
    }
    // Fall through to the heap read (e.g. a filesystem without mmap).
  }

  out->heap_.resize(size);
  uint8_t* dst = out->heap_.data();
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, dst + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Errno("cannot read", path);
      ::close(fd);
      out->Release();
      return status;
    }
    if (n == 0) break;  // file shrank underneath us; decoder will reject
    done += static_cast<size_t>(n);
  }
  ::close(fd);
  out->data_ = dst;
  out->size_ = done;
  out->mapped_ = false;
  out->policy_ = policy;
  return Status::Ok();
#else
  (void)allow_mmap;
  std::vector<uint8_t> bytes;
  Status status = ReadFileBytes(path, &bytes);
  if (!status.ok()) return status;
  out->heap_.assign(bytes.begin(), bytes.end());
  out->data_ = out->heap_.data();
  out->size_ = out->heap_.size();
  out->mapped_ = false;
  out->policy_ = policy;
  return Status::Ok();
#endif
}

}  // namespace io
}  // namespace viptree
