#include "io/mmap_arena.h"

#include <cerrno>
#include <cstring>
#include <utility>

#if defined(_WIN32)
#define VIPTREE_HAS_MMAP 0
#else
#define VIPTREE_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace viptree {
namespace io {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::Error(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

MmapArena& MmapArena::operator=(MmapArena&& other) noexcept {
  if (this != &other) {
    Release();
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    heap_ = std::move(other.heap_);
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

void MmapArena::Release() {
#if VIPTREE_HAS_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  heap_.reset();
}

Status MmapArena::Map(const std::string& path, MmapArena* out,
                      bool allow_mmap) {
  out->Release();
#if VIPTREE_HAS_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Errno("cannot open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = Errno("cannot stat", path);
    ::close(fd);
    return status;
  }
  if (S_ISDIR(st.st_mode)) {
    ::close(fd);
    return Status::Error("cannot open '" + path + "': is a directory");
  }
  const size_t size = static_cast<size_t>(st.st_size);

  if (allow_mmap && size > 0) {
    void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapping != MAP_FAILED) {
      ::close(fd);
      out->data_ = static_cast<const uint8_t*>(mapping);
      out->size_ = size;
      out->mapped_ = true;
      return Status::Ok();
    }
    // Fall through to the heap read (e.g. a filesystem without mmap).
  }

  out->heap_ = std::make_unique<uint64_t[]>((size + 7) / 8);
  uint8_t* dst = reinterpret_cast<uint8_t*>(out->heap_.get());
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, dst + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Errno("cannot read", path);
      ::close(fd);
      out->Release();
      return status;
    }
    if (n == 0) break;  // file shrank underneath us; decoder will reject
    done += static_cast<size_t>(n);
  }
  ::close(fd);
  out->data_ = dst;
  out->size_ = done;
  out->mapped_ = false;
  return Status::Ok();
#else
  (void)allow_mmap;
  std::vector<uint8_t> bytes;
  Status status = ReadFileBytes(path, &bytes);
  if (!status.ok()) return status;
  out->heap_ = std::make_unique<uint64_t[]>((bytes.size() + 7) / 8);
  uint8_t* dst = reinterpret_cast<uint8_t*>(out->heap_.get());
  if (!bytes.empty()) std::memcpy(dst, bytes.data(), bytes.size());
  out->data_ = dst;
  out->size_ = bytes.size();
  out->mapped_ = false;
  return Status::Ok();
#endif
}

}  // namespace io
}  // namespace viptree
