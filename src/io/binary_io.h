// Low-level binary serialization: an append-only little-endian Writer, a
// bounds-checked Reader with sticky error reporting, CRC-32 checksums, and
// whole-file helpers. Byte order is fixed little-endian regardless of host,
// so snapshots are portable across machines ("build once, load anywhere");
// on little-endian hosts every scalar and array moves with memcpy, so the
// load path runs at memory bandwidth rather than a byte at a time.
//
// Error model (no exceptions, matching the rest of the library): the Reader
// records the *first* failure and every subsequent read returns a default
// value without advancing, so decoding code can run straight-line and check
// ok() once at the end. File helpers return a Status with a human-readable
// message instead of aborting — a corrupted or truncated snapshot must be a
// reportable condition, never a crash.

#ifndef VIPTREE_IO_BINARY_IO_H_
#define VIPTREE_IO_BINARY_IO_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/span.h"

namespace viptree {
namespace io {

// Outcome of an I/O operation; empty error means success.
struct Status {
  std::string error;

  bool ok() const { return error.empty(); }
  static Status Ok() { return Status{}; }
  static Status Error(std::string message) { return Status{std::move(message)}; }
};

// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, slice-by-8) over `size` bytes,
// seeded by `seed` so checksums can be computed incrementally.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

namespace detail {

#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
inline constexpr bool kHostIsLittleEndian = false;
#else
inline constexpr bool kHostIsLittleEndian = true;
#endif

inline uint16_t ByteSwap(uint16_t v) { return __builtin_bswap16(v); }
inline uint32_t ByteSwap(uint32_t v) { return __builtin_bswap32(v); }
inline uint64_t ByteSwap(uint64_t v) { return __builtin_bswap64(v); }

template <typename T>
inline T ToLittle(T v) {
  return kHostIsLittleEndian ? v : ByteSwap(v);
}

}  // namespace detail

// Append-only little-endian encoder.
class Writer {
 public:
  void U8(uint8_t v) { buffer_.push_back(v); }
  void U32(uint32_t v) { AppendScalar(detail::ToLittle(v)); }
  void U64(uint64_t v) { AppendScalar(detail::ToLittle(v)); }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void F32(float v) {
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U32(bits);
  }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void String(const std::string& s) {
    U64(s.size());
    Bytes(s.data(), s.size());
  }
  void Bytes(const void* data, size_t size) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    buffer_.insert(buffer_.end(), p, p + size);
  }

  // Bulk little-endian array appends (single memcpy on LE hosts).
  void U32Array(Span<const uint32_t> v) { AppendArray(v); }
  void U64Array(Span<const uint64_t> v) { AppendArray(v); }
  void I32Array(Span<const int32_t> v) {
    AppendArray(Span<const uint32_t>(
        reinterpret_cast<const uint32_t*>(v.data()), v.size()));
  }
  void F32Array(Span<const float> v) {
    AppendArray(Span<const uint32_t>(
        reinterpret_cast<const uint32_t*>(v.data()), v.size()));
  }
  void F64Array(Span<const double> v) {
    AppendArray(Span<const uint64_t>(
        reinterpret_cast<const uint64_t*>(v.data()), v.size()));
  }

  size_t size() const { return buffer_.size(); }
  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buffer_); }

 private:
  template <typename T>
  void AppendScalar(T little) {
    const size_t at = buffer_.size();
    buffer_.resize(at + sizeof(T));
    std::memcpy(buffer_.data() + at, &little, sizeof(T));
  }

  template <typename T>
  void AppendArray(Span<const T> v) {
    if (detail::kHostIsLittleEndian) {
      const size_t at = buffer_.size();
      buffer_.resize(at + v.size() * sizeof(T));
      if (!v.empty()) {
        std::memcpy(buffer_.data() + at, v.data(), v.size() * sizeof(T));
      }
    } else {
      for (T x : v) AppendScalar(detail::ByteSwap(x));
    }
  }

  std::vector<uint8_t> buffer_;
};

// Bounds-checked little-endian decoder over a borrowed byte range.
class Reader {
 public:
  explicit Reader(Span<const uint8_t> data) : data_(data) {}

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  size_t position() const { return pos_; }
  size_t remaining() const { return ok() ? data_.size() - pos_ : 0; }

  // Records the first failure; subsequent reads return defaults.
  void Fail(std::string message) {
    if (error_.empty()) error_ = std::move(message);
  }

  uint8_t U8() {
    if (!Want(1, "u8")) return 0;
    return data_[pos_++];
  }
  uint32_t U32() { return ReadScalar<uint32_t>("u32"); }
  uint64_t U64() { return ReadScalar<uint64_t>("u64"); }
  int32_t I32() { return static_cast<int32_t>(U32()); }
  float F32() {
    const uint32_t bits = U32();
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  double F64() {
    const uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string String() {
    const uint64_t size = U64();
    if (!Want(size, "string payload")) return {};
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), size);
    pos_ += size;
    return s;
  }
  // Borrows `size` raw bytes from the underlying buffer.
  Span<const uint8_t> Raw(uint64_t size) {
    if (!Want(size, "raw bytes")) return {};
    const Span<const uint8_t> out{data_.data() + pos_,
                                  static_cast<size_t>(size)};
    pos_ += size;
    return out;
  }

  // Bulk little-endian array reads into pre-sized destinations (single
  // memcpy on LE hosts). On failure the destination contents are
  // unspecified and the reader carries the error.
  void U32Array(uint32_t* out, size_t n) { ReadArray(out, n); }
  void U64Array(uint64_t* out, size_t n) { ReadArray(out, n); }
  void I32Array(int32_t* out, size_t n) {
    ReadArray(reinterpret_cast<uint32_t*>(out), n);
  }
  void F32Array(float* out, size_t n) {
    ReadArray(reinterpret_cast<uint32_t*>(out), n);
  }
  void F64Array(double* out, size_t n) {
    ReadArray(reinterpret_cast<uint64_t*>(out), n);
  }

  // Reads a u64 element count and fails (with `what` in the message) if the
  // remaining bytes cannot possibly hold that many `element_size`d items —
  // the guard that keeps a corrupted count from driving a giant allocation.
  uint64_t ArraySize(size_t element_size, const char* what) {
    const uint64_t count = U64();
    if (ok() && element_size != 0 &&
        count > (data_.size() - pos_) / element_size) {
      Fail(std::string("truncated: ") + what + " claims " +
           std::to_string(count) + " elements but only " +
           std::to_string(data_.size() - pos_) + " bytes remain");
    }
    return ok() ? count : 0;
  }

 private:
  bool Want(uint64_t bytes, const char* what) {
    if (!ok()) return false;
    if (bytes > data_.size() - pos_) {
      Fail(std::string("truncated while reading ") + what + " at offset " +
           std::to_string(pos_));
      return false;
    }
    return true;
  }

  template <typename T>
  T ReadScalar(const char* what) {
    if (!Want(sizeof(T), what)) return 0;
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return detail::ToLittle(v);
  }

  template <typename T>
  void ReadArray(T* out, size_t n) {
    if (n > data_.size() / sizeof(T)) {  // n * sizeof(T) cannot overflow
      Fail("truncated: array payload larger than the buffer");
      return;
    }
    if (!Want(n * sizeof(T), "array payload")) return;
    if (n != 0) std::memcpy(out, data_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    if (!detail::kHostIsLittleEndian) {
      for (size_t i = 0; i < n; ++i) out[i] = detail::ByteSwap(out[i]);
    }
  }

  Span<const uint8_t> data_;
  size_t pos_ = 0;
  std::string error_;
};

// Writes `bytes` to `path` atomically enough for snapshots (write to the
// final path directly; partial writes are caught by checksums on load).
Status WriteFileBytes(const std::string& path, Span<const uint8_t> bytes);

// Reads the whole file into `out`.
Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out);

}  // namespace io
}  // namespace viptree

#endif  // VIPTREE_IO_BINARY_IO_H_
