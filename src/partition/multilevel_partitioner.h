// Multilevel graph partitioner — the METIS [15] stand-in used by the G-tree
// and ROAD baselines (§5: "G-tree uses an existing multilevel graph
// partitioning algorithm for graph decomposition").
//
// Classic three-phase scheme on the door connectivity graph:
//   1. coarsen by heavy-edge matching until the graph is small,
//   2. greedy graph-growing bisection of the coarse graph,
//   3. project back with boundary Kernighan-Lin-style refinement.
// Multi-way splits are recursive bisections.

#ifndef VIPTREE_PARTITION_MULTILEVEL_PARTITIONER_H_
#define VIPTREE_PARTITION_MULTILEVEL_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "graph/d2d_graph.h"

namespace viptree {

class MultilevelPartitioner {
 public:
  explicit MultilevelPartitioner(const D2DGraph& graph, uint64_t seed = 1);

  // Splits `vertices` (door ids) into up to `parts` balanced groups with a
  // small edge cut. Returns a part index in [0, parts) per input position.
  // Groups are non-empty as long as parts <= vertices.size().
  std::vector<int> Partition(const std::vector<DoorId>& vertices, int parts);

  // Internal compact graph for one (sub)problem. Public for the free
  // helper functions in the implementation file; not part of the API.
  struct CompactGraph {
    // CSR with edge multiplicities as weights.
    std::vector<int> offsets;
    std::vector<int> targets;
    std::vector<int> weights;
    std::vector<int> vertex_weight;  // number of original doors merged in
    size_t n() const { return vertex_weight.size(); }
  };

 private:
  std::vector<int> Bisect(const CompactGraph& g);
  std::vector<int> BisectDirect(const CompactGraph& g);
  void Refine(const CompactGraph& g, std::vector<int>& side);

  const D2DGraph& graph_;
  uint64_t seed_;
};

}  // namespace viptree

#endif  // VIPTREE_PARTITION_MULTILEVEL_PARTITIONER_H_
