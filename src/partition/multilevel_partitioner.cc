#include "partition/multilevel_partitioner.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <unordered_map>

#include "common/check.h"
#include "common/rng.h"

namespace viptree {

namespace {

// Builds a compact graph over `vertices` from the D2D graph, collapsing
// parallel edges into weights.
MultilevelPartitioner::CompactGraph BuildCompact(
    const D2DGraph& graph, const std::vector<DoorId>& vertices) {
  MultilevelPartitioner::CompactGraph g;
  const size_t n = vertices.size();
  std::unordered_map<DoorId, int> local;
  local.reserve(n * 2);
  for (size_t i = 0; i < n; ++i) local[vertices[i]] = static_cast<int>(i);

  g.offsets.assign(n + 1, 0);
  g.vertex_weight.assign(n, 1);
  std::vector<std::vector<std::pair<int, int>>> adj(n);
  for (size_t i = 0; i < n; ++i) {
    std::unordered_map<int, int> merged;
    for (const D2DEdge& e : graph.EdgesOf(vertices[i])) {
      const auto it = local.find(e.to);
      if (it == local.end()) continue;
      ++merged[it->second];
    }
    adj[i].assign(merged.begin(), merged.end());
  }
  for (size_t i = 0; i < n; ++i) {
    g.offsets[i + 1] = g.offsets[i] + static_cast<int>(adj[i].size());
  }
  g.targets.resize(g.offsets.back());
  g.weights.resize(g.offsets.back());
  for (size_t i = 0; i < n; ++i) {
    int cursor = g.offsets[i];
    for (const auto& [to, w] : adj[i]) {
      g.targets[cursor] = to;
      g.weights[cursor] = w;
      ++cursor;
    }
  }
  return g;
}

// Heavy-edge matching: returns coarse vertex id per fine vertex.
std::vector<int> HeavyEdgeMatching(
    const MultilevelPartitioner::CompactGraph& g, size_t* coarse_n) {
  const size_t n = g.n();
  std::vector<int> match(n, -1);
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  // Visit low-degree vertices first so they are not starved of partners.
  std::sort(order.begin(), order.end(), [&g](int a, int b) {
    return g.offsets[a + 1] - g.offsets[a] < g.offsets[b + 1] - g.offsets[b];
  });
  for (int v : order) {
    if (match[v] >= 0) continue;
    int best = -1;
    int best_w = -1;
    for (int e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
      const int u = g.targets[e];
      if (u == v || match[u] >= 0) continue;
      if (g.weights[e] > best_w) {
        best_w = g.weights[e];
        best = u;
      }
    }
    if (best >= 0) {
      match[v] = best;
      match[best] = v;
    } else {
      match[v] = v;  // stays single
    }
  }
  std::vector<int> coarse_of(n, -1);
  int next = 0;
  for (size_t v = 0; v < n; ++v) {
    if (coarse_of[v] >= 0) continue;
    coarse_of[v] = next;
    coarse_of[match[v]] = next;
    ++next;
  }
  *coarse_n = static_cast<size_t>(next);
  return coarse_of;
}

MultilevelPartitioner::CompactGraph Coarsen(
    const MultilevelPartitioner::CompactGraph& g,
    const std::vector<int>& coarse_of, size_t coarse_n) {
  MultilevelPartitioner::CompactGraph c;
  c.vertex_weight.assign(coarse_n, 0);
  for (size_t v = 0; v < g.n(); ++v) {
    c.vertex_weight[coarse_of[v]] += g.vertex_weight[v];
  }
  std::vector<std::unordered_map<int, int>> adj(coarse_n);
  for (size_t v = 0; v < g.n(); ++v) {
    const int cv = coarse_of[v];
    for (int e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
      const int cu = coarse_of[g.targets[e]];
      if (cu == cv) continue;
      adj[cv][cu] += g.weights[e];
    }
  }
  c.offsets.assign(coarse_n + 1, 0);
  for (size_t v = 0; v < coarse_n; ++v) {
    c.offsets[v + 1] = c.offsets[v] + static_cast<int>(adj[v].size());
  }
  c.targets.resize(c.offsets.back());
  c.weights.resize(c.offsets.back());
  for (size_t v = 0; v < coarse_n; ++v) {
    int cursor = c.offsets[v];
    for (const auto& [to, w] : adj[v]) {
      c.targets[cursor] = to;
      c.weights[cursor] = w;
      ++cursor;
    }
  }
  return c;
}

int TotalWeight(const MultilevelPartitioner::CompactGraph& g) {
  int total = 0;
  for (int w : g.vertex_weight) total += w;
  return total;
}

}  // namespace

MultilevelPartitioner::MultilevelPartitioner(const D2DGraph& graph,
                                             uint64_t seed)
    : graph_(graph), seed_(seed) {}

std::vector<int> MultilevelPartitioner::BisectDirect(const CompactGraph& g) {
  // Greedy graph growing: BFS-accumulate vertices from a start vertex until
  // half the total weight is collected.
  const size_t n = g.n();
  std::vector<int> side(n, 1);
  if (n <= 1) {
    return side;
  }
  const int total = TotalWeight(g);
  Rng rng(seed_ + n);
  const int start = static_cast<int>(rng.UniformIndex(n));
  std::vector<bool> taken(n, false);
  std::queue<int> frontier;
  frontier.push(start);
  taken[start] = true;
  int grown = g.vertex_weight[start];
  side[start] = 0;
  while (grown * 2 < total && !frontier.empty()) {
    const int v = frontier.front();
    frontier.pop();
    for (int e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
      const int u = g.targets[e];
      if (taken[u] || grown * 2 >= total) continue;
      taken[u] = true;
      side[u] = 0;
      grown += g.vertex_weight[u];
      frontier.push(u);
    }
    if (frontier.empty() && grown * 2 < total) {
      // Disconnected remainder: jump to any untaken vertex.
      for (size_t u = 0; u < n; ++u) {
        if (!taken[u]) {
          taken[u] = true;
          side[u] = 0;
          grown += g.vertex_weight[u];
          frontier.push(static_cast<int>(u));
          break;
        }
      }
    }
  }
  return side;
}

void MultilevelPartitioner::Refine(const CompactGraph& g,
                                   std::vector<int>& side) {
  // Boundary refinement: move vertices with positive gain (more edge weight
  // to the other side) while keeping both sides within 60% of the total.
  const int total = TotalWeight(g);
  int weight0 = 0;
  for (size_t v = 0; v < g.n(); ++v) {
    if (side[v] == 0) weight0 += g.vertex_weight[v];
  }
  const int cap = (total * 3) / 5 + 1;
  for (int pass = 0; pass < 2; ++pass) {
    bool moved = false;
    for (size_t v = 0; v < g.n(); ++v) {
      int to_same = 0;
      int to_other = 0;
      for (int e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
        if (side[g.targets[e]] == side[v]) {
          to_same += g.weights[e];
        } else {
          to_other += g.weights[e];
        }
      }
      if (to_other <= to_same) continue;
      const int new_w0 =
          side[v] == 0 ? weight0 - g.vertex_weight[v]
                       : weight0 + g.vertex_weight[v];
      if (new_w0 > cap || total - new_w0 > cap) continue;
      side[v] = 1 - side[v];
      weight0 = new_w0;
      moved = true;
    }
    if (!moved) break;
  }
}

std::vector<int> MultilevelPartitioner::Bisect(const CompactGraph& g) {
  constexpr size_t kDirectThreshold = 256;
  if (g.n() <= kDirectThreshold) {
    std::vector<int> side = BisectDirect(g);
    Refine(g, side);
    return side;
  }
  size_t coarse_n = 0;
  const std::vector<int> coarse_of = HeavyEdgeMatching(g, &coarse_n);
  if (coarse_n == g.n()) {  // matching made no progress
    std::vector<int> side = BisectDirect(g);
    Refine(g, side);
    return side;
  }
  const CompactGraph coarse = Coarsen(g, coarse_of, coarse_n);
  const std::vector<int> coarse_side = Bisect(coarse);
  std::vector<int> side(g.n());
  for (size_t v = 0; v < g.n(); ++v) side[v] = coarse_side[coarse_of[v]];
  Refine(g, side);
  return side;
}

std::vector<int> MultilevelPartitioner::Partition(
    const std::vector<DoorId>& vertices, int parts) {
  VIPTREE_CHECK(parts >= 1);
  std::vector<int> result(vertices.size(), 0);
  if (parts == 1 || vertices.size() <= 1) return result;

  // Recursive bisection: split into ceil(parts/2) and floor(parts/2).
  const CompactGraph g = BuildCompact(graph_, vertices);
  std::vector<int> side = Bisect(g);

  std::vector<DoorId> left, right;
  std::vector<size_t> left_pos, right_pos;
  for (size_t i = 0; i < vertices.size(); ++i) {
    if (side[i] == 0) {
      left.push_back(vertices[i]);
      left_pos.push_back(i);
    } else {
      right.push_back(vertices[i]);
      right_pos.push_back(i);
    }
  }
  // Guard against empty sides (pathological graphs).
  if (left.empty() || right.empty()) {
    for (size_t i = 0; i < vertices.size(); ++i) {
      result[i] = static_cast<int>(i % parts);
    }
    return result;
  }
  const int left_parts = (parts + 1) / 2;
  const int right_parts = parts - left_parts;
  const std::vector<int> left_assign = Partition(left, left_parts);
  const std::vector<int> right_assign =
      Partition(right, std::max(1, right_parts));
  for (size_t i = 0; i < left.size(); ++i) {
    result[left_pos[i]] = left_assign[i];
  }
  for (size_t i = 0; i < right.size(); ++i) {
    result[right_pos[i]] = left_parts + right_assign[i];
  }
  return result;
}

}  // namespace viptree
