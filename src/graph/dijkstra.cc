#include "graph/dijkstra.h"

#include <algorithm>

#include "common/check.h"
#include "common/span.h"

namespace viptree {

DijkstraEngine::DijkstraEngine(const D2DGraph& graph)
    : graph_(graph),
      dist_(graph.NumVertices(), kInfDistance),
      parent_(graph.NumVertices(), kInvalidId),
      parent_via_(graph.NumVertices(), kInvalidId),
      settled_(graph.NumVertices(), 0),
      epoch_mark_(graph.NumVertices(), 0) {}

void DijkstraEngine::Reach(DoorId d, double dist, DoorId parent,
                           PartitionId via) {
  if (epoch_mark_[d] != epoch_) {
    epoch_mark_[d] = epoch_;
    settled_[d] = 0;
    dist_[d] = kInfDistance;
  }
  if (dist < dist_[d]) {
    dist_[d] = dist;
    parent_[d] = parent;
    parent_via_[d] = via;
    heap_.emplace(dist, d);
  }
}

void DijkstraEngine::Start(Span<const DijkstraSource> sources) {
  ++epoch_;
  settled_count_ = 0;
  // priority_queue has no clear(); rebuild it empty.
  heap_ = decltype(heap_)();
  for (const DijkstraSource& s : sources) {
    VIPTREE_DCHECK(s.door >= 0 &&
                   static_cast<size_t>(s.door) < graph_.NumVertices());
    Reach(s.door, s.offset, kInvalidId, kInvalidId);
  }
}

SettledDoor DijkstraEngine::SettleNext() {
  while (!heap_.empty()) {
    const auto [d, u] = heap_.top();
    heap_.pop();
    if (settled_[u] && epoch_mark_[u] == epoch_) continue;  // stale entry
    if (d > dist_[u]) continue;                             // stale entry
    settled_[u] = 1;
    ++settled_count_;
    for (const D2DEdge& e : graph_.EdgesOf(u)) {
      if (epoch_mark_[e.to] == epoch_ && settled_[e.to]) continue;
      Reach(e.to, d + e.weight, u, e.via);
    }
    return SettledDoor{u, d};
  }
  return SettledDoor{kInvalidId, kInfDistance};
}

size_t DijkstraEngine::RunToTargets(Span<const DoorId> targets) {
  size_t wanted = 0;
  for (DoorId t : targets) {
    if (!Settled(t)) ++wanted;
  }
  size_t reached = targets.size() - wanted;
  while (wanted > 0) {
    const SettledDoor s = SettleNext();
    if (s.door == kInvalidId) break;
    // Linear membership check is fine: target sets are small (the doors of
    // one node / partition).
    if (std::find(targets.begin(), targets.end(), s.door) != targets.end()) {
      --wanted;
      ++reached;
    }
  }
  return reached;
}

void DijkstraEngine::RunWithin(double radius) {
  while (!heap_.empty()) {
    if (heap_.top().first > radius) return;
    SettleNext();
  }
}

void DijkstraEngine::RunAll() {
  while (SettleNext().door != kInvalidId) {
  }
}

std::vector<DoorId> DijkstraEngine::PathTo(DoorId d) const {
  VIPTREE_CHECK(Settled(d));
  std::vector<DoorId> path;
  for (DoorId cur = d; cur != kInvalidId; cur = parent_[cur]) {
    path.push_back(cur);
    VIPTREE_DCHECK(path.size() <= graph_.NumVertices());
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace viptree
