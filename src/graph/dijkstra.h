// Reusable Dijkstra engine over the D2D graph.
//
// One engine instance owns distance / parent / epoch arrays sized to the
// graph, so repeated queries (index construction issues one search per
// access door; DistAw issues one per query) cost O(visited) instead of
// O(|V|) re-initialization. The engine exposes an incremental interface --
// Start() then SettleNext() -- because the DistAw kNN/range algorithms need
// to examine doors in increasing distance order and stop early.
//
// Not thread-safe; use one engine per thread.

#ifndef VIPTREE_GRAPH_DIJKSTRA_H_
#define VIPTREE_GRAPH_DIJKSTRA_H_

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "graph/d2d_graph.h"
#include "model/types.h"
#include "common/span.h"

namespace viptree {

// A source door with an initial distance offset (multi-source searches from
// a query point seed every door of its partition with the intra-partition
// walking distance).
struct DijkstraSource {
  DoorId door = kInvalidId;
  double offset = 0.0;
};

struct SettledDoor {
  DoorId door = kInvalidId;
  double distance = 0.0;
};

class DijkstraEngine {
 public:
  // The graph must outlive the engine.
  explicit DijkstraEngine(const D2DGraph& graph);

  DijkstraEngine(const DijkstraEngine&) = delete;
  DijkstraEngine& operator=(const DijkstraEngine&) = delete;
  // Movable so the query engines holding Dijkstra scratch can themselves be
  // moved into owning containers (engine::VenueBundle).
  DijkstraEngine(DijkstraEngine&&) = default;

  // Begins a new search from the given sources, invalidating all state from
  // the previous search.
  void Start(Span<const DijkstraSource> sources);
  void Start(DoorId source) {
    const DijkstraSource s{source, 0.0};
    Start(Span<const DijkstraSource>(&s, 1));
  }

  // Settles and returns the next-closest door, or a door with
  // id == kInvalidId when the reachable space is exhausted.
  SettledDoor SettleNext();

  // Runs until all doors in `targets` are settled (or the graph is
  // exhausted). Returns the number of targets actually reached.
  size_t RunToTargets(Span<const DoorId> targets);

  // Runs until the next door to settle is farther than `radius`.
  void RunWithin(double radius);

  // Runs the search to completion.
  void RunAll();

  // Accessors for the current search. Distance is kInfDistance for doors
  // not yet settled (or unreachable).
  bool Settled(DoorId d) const {
    return epoch_mark_[d] == epoch_ && settled_[d];
  }
  double DistanceTo(DoorId d) const {
    return Settled(d) ? dist_[d] : kInfDistance;
  }
  // Predecessor door on the shortest path from the nearest source
  // (kInvalidId for source doors), and the partition the final edge
  // traverses.
  DoorId ParentOf(DoorId d) const { return Settled(d) ? parent_[d] : kInvalidId; }
  PartitionId ParentVia(DoorId d) const {
    return Settled(d) ? parent_via_[d] : kInvalidId;
  }

  // Reconstructs the door sequence from the source to `d` (source door
  // first, `d` last). `d` must be settled.
  std::vector<DoorId> PathTo(DoorId d) const;

  size_t NumSettledInSearch() const { return settled_count_; }

 private:
  void Reach(DoorId d, double dist, DoorId parent, PartitionId via);

  const D2DGraph& graph_;
  std::vector<double> dist_;
  std::vector<DoorId> parent_;
  std::vector<PartitionId> parent_via_;
  std::vector<uint8_t> settled_;
  std::vector<uint32_t> epoch_mark_;
  uint32_t epoch_ = 0;
  size_t settled_count_ = 0;

  using HeapEntry = std::pair<double, DoorId>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap_;
};

}  // namespace viptree

#endif  // VIPTREE_GRAPH_DIJKSTRA_H_
