#include "graph/ab_graph.h"

namespace viptree {

ABGraph::ABGraph(const Venue& venue) {
  const size_t num_partitions = venue.NumPartitions();
  offsets_.assign(num_partitions + 1, 0);
  for (const Door& d : venue.doors()) {
    if (d.is_exterior()) continue;  // exterior doors lead out of the venue
    ++offsets_[d.partition_a + 1];
    ++offsets_[d.partition_b + 1];
  }
  for (size_t p = 0; p < num_partitions; ++p) offsets_[p + 1] += offsets_[p];
  edges_.resize(offsets_.back());
  std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Door& d : venue.doors()) {
    if (d.is_exterior()) continue;
    edges_[cursor[d.partition_a]++] = ABEdge{d.partition_b, d.id};
    edges_[cursor[d.partition_b]++] = ABEdge{d.partition_a, d.id};
  }
}

}  // namespace viptree
