// The door-to-door (D2D) graph of Yang et al. [25], §1.2.2 of the paper:
// every door is a vertex and two doors are connected by a weighted edge if
// they are attached to the same indoor partition, the weight being the
// walking distance through that partition.
//
// Each edge is labelled with the partition it traverses; the label is what
// lets index construction decide whether a shortest path stays inside a tree
// node (the next-hop rule of §2.1.1) without re-deriving geometry.
//
// The graph is stored in CSR form. Two doors sharing both of their
// partitions produce two parallel edges (one per partition); Dijkstra
// naturally picks the cheaper one.

#ifndef VIPTREE_GRAPH_D2D_GRAPH_H_
#define VIPTREE_GRAPH_D2D_GRAPH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/venue.h"
#include "common/span.h"
#include "common/storage.h"

namespace viptree {

struct D2DEdge {
  DoorId to = kInvalidId;
  float weight = 0.0f;
  PartitionId via = kInvalidId;  // the partition this edge walks through
};

// Edges are persisted as raw bytes in format-v2 snapshots and aliased
// straight out of the mapped file, so the layout must stay padding-free.
static_assert(sizeof(D2DEdge) == 12, "D2DEdge must stay a packed 12 bytes");

// An explicitly weighted door-to-door connection, for building a D2D graph
// whose weights are not derived from geometry (imported venues, the paper's
// running example with hand-specified distances, travel-time models).
struct ExplicitD2DEdge {
  DoorId u = kInvalidId;
  DoorId v = kInvalidId;
  float weight = 0.0f;
  PartitionId via = kInvalidId;
};

class D2DGraph {
 public:
  // The complete serializable state: the CSR arrays exactly as stored, so a
  // reconstructed graph is bit-identical to the original (edge weights are
  // never re-derived from geometry on load). The buffers are Storage, so a
  // zero-copy snapshot load can hand in arena views.
  struct Parts {
    size_t num_vertices = 0;
    Storage<uint64_t> offsets;  // num_vertices + 1 entries
    Storage<D2DEdge> edges;
  };

  // Builds the D2D graph of `venue` with geometric weights. The venue must
  // outlive the graph.
  explicit D2DGraph(const Venue& venue);

  // Builds a D2D graph from explicit undirected edges over `num_doors`
  // doors (each explicit edge produces both directions).
  D2DGraph(size_t num_doors, Span<const ExplicitD2DEdge> edges);

  // Returns an error description if `parts` is not a well-formed CSR graph,
  // std::nullopt if it is. kStructure checks the offsets array (size,
  // monotonicity, coverage); kFull additionally sweeps every edge (target
  // in range, weight non-negative) — see viptree::ValidationLevel.
  static std::optional<std::string> ValidateParts(
      const Parts& parts, ValidationLevel level = ValidationLevel::kFull);

  // Reconstructs a graph from deserialized parts. Aborts on malformed input
  // (run ValidateParts first when the parts come from an untrusted file).
  static D2DGraph FromParts(Parts parts);

  // Same, for callers that have *just* run ValidateParts themselves (the
  // snapshot loader): skips the redundant validation pass.
  static D2DGraph FromValidatedParts(Parts parts);

  Parts ToParts() const;
  D2DGraph Clone() const { return FromParts(ToParts()); }

  D2DGraph(const D2DGraph&) = delete;
  D2DGraph& operator=(const D2DGraph&) = delete;
  D2DGraph(D2DGraph&&) = default;

  size_t NumVertices() const { return num_vertices_; }

  // Number of directed edges.
  size_t NumDirectedEdges() const { return edges_.size(); }

  // Number of undirected edges (what Table 2 reports).
  size_t NumEdges() const { return edges_.size() / 2; }

  Span<const D2DEdge> EdgesOf(DoorId d) const {
    return {edges_.data() + offsets_[d], edges_.data() + offsets_[d + 1]};
  }

  // Average out-degree; the paper observes indoor graphs reach out-degrees
  // of hundreds while road networks stay at 2-4 (§1.2.1).
  double AverageOutDegree() const {
    return num_vertices_ == 0
               ? 0.0
               : static_cast<double>(edges_.size()) /
                     static_cast<double>(num_vertices_);
  }

  uint64_t MemoryBytes() const {
    return offsets_.MemoryBytes() + edges_.MemoryBytes();
  }

 private:
  D2DGraph() = default;

  size_t num_vertices_ = 0;
  Storage<uint64_t> offsets_;
  Storage<D2DEdge> edges_;
};

}  // namespace viptree

#endif  // VIPTREE_GRAPH_D2D_GRAPH_H_
