#include "graph/d2d_graph.h"

#include <string>
#include <utility>

#include "common/check.h"
#include "common/span.h"

namespace viptree {

std::optional<std::string> D2DGraph::ValidateParts(const Parts& parts,
                                                   ValidationLevel level) {
  if (parts.offsets.size() != parts.num_vertices + 1) {
    return "graph offsets array has " + std::to_string(parts.offsets.size()) +
           " entries, expected " + std::to_string(parts.num_vertices + 1);
  }
  if (!parts.offsets.empty() && parts.offsets.front() != 0) {
    return "graph offsets do not start at 0";
  }
  for (size_t v = 0; v < parts.num_vertices; ++v) {
    if (parts.offsets[v] > parts.offsets[v + 1]) {
      return "graph offsets are not monotone at vertex " + std::to_string(v);
    }
  }
  if (!parts.offsets.empty() && parts.offsets.back() != parts.edges.size()) {
    return "graph offsets cover " + std::to_string(parts.offsets.back()) +
           " edges but " + std::to_string(parts.edges.size()) +
           " are present";
  }
  if (level != ValidationLevel::kFull) return std::nullopt;
  for (size_t i = 0; i < parts.edges.size(); ++i) {
    const D2DEdge& e = parts.edges[i];
    if (e.to < 0 || static_cast<size_t>(e.to) >= parts.num_vertices) {
      return "edge " + std::to_string(i) + " targets unknown door " +
             std::to_string(e.to);
    }
    if (!(e.weight >= 0.0f)) {  // also rejects NaN
      return "edge " + std::to_string(i) + " has negative or NaN weight";
    }
  }
  return std::nullopt;
}

D2DGraph D2DGraph::FromParts(Parts parts) {
  const std::optional<std::string> error = ValidateParts(parts);
  VIPTREE_CHECK_MSG(!error.has_value(),
                    error.has_value() ? error->c_str() : "");
  return FromValidatedParts(std::move(parts));
}

D2DGraph D2DGraph::FromValidatedParts(Parts parts) {
  D2DGraph graph;
  graph.num_vertices_ = parts.num_vertices;
  graph.offsets_ = std::move(parts.offsets);
  graph.edges_ = std::move(parts.edges);
  return graph;
}

D2DGraph::Parts D2DGraph::ToParts() const {
  Parts parts;
  parts.num_vertices = num_vertices_;
  parts.offsets = offsets_;
  parts.edges = edges_;
  return parts;
}

D2DGraph::D2DGraph(const Venue& venue) {
  num_vertices_ = venue.NumDoors();

  // Pass 1: count directed edges per door. Every unordered pair of distinct
  // doors of a partition contributes one edge in each direction.
  std::vector<uint64_t> degree(num_vertices_ + 1, 0);
  for (const Partition& p : venue.partitions()) {
    const Span<const DoorId> doors = venue.DoorsOf(p.id);
    const uint64_t others = doors.size() - 1;
    for (DoorId d : doors) degree[d] += others;
  }
  offsets_.assign(num_vertices_ + 1, 0);
  for (size_t v = 0; v < num_vertices_; ++v) {
    offsets_[v + 1] = offsets_[v] + degree[v];
  }
  edges_.resize(offsets_.back());

  // Pass 2: fill.
  std::vector<uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Partition& p : venue.partitions()) {
    const Span<const DoorId> doors = venue.DoorsOf(p.id);
    for (size_t i = 0; i < doors.size(); ++i) {
      for (size_t j = i + 1; j < doors.size(); ++j) {
        const DoorId u = doors[i];
        const DoorId v = doors[j];
        const float w = static_cast<float>(venue.IntraPartitionDistance(
            p.id, venue.door(u).position, venue.door(v).position));
        edges_[cursor[u]++] = D2DEdge{v, w, p.id};
        edges_[cursor[v]++] = D2DEdge{u, w, p.id};
      }
    }
  }
  for (size_t v = 0; v < num_vertices_; ++v) {
    VIPTREE_DCHECK(cursor[v] == offsets_[v + 1]);
  }
}

D2DGraph::D2DGraph(size_t num_doors,
                   Span<const ExplicitD2DEdge> explicit_edges) {
  num_vertices_ = num_doors;
  std::vector<uint64_t> degree(num_vertices_, 0);
  for (const ExplicitD2DEdge& e : explicit_edges) {
    VIPTREE_CHECK(e.u >= 0 && static_cast<size_t>(e.u) < num_doors);
    VIPTREE_CHECK(e.v >= 0 && static_cast<size_t>(e.v) < num_doors);
    VIPTREE_CHECK(e.u != e.v);
    VIPTREE_CHECK(e.weight >= 0.0f);
    ++degree[e.u];
    ++degree[e.v];
  }
  offsets_.assign(num_vertices_ + 1, 0);
  for (size_t v = 0; v < num_vertices_; ++v) {
    offsets_[v + 1] = offsets_[v] + degree[v];
  }
  edges_.resize(offsets_.back());
  std::vector<uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const ExplicitD2DEdge& e : explicit_edges) {
    edges_[cursor[e.u]++] = D2DEdge{e.v, e.weight, e.via};
    edges_[cursor[e.v]++] = D2DEdge{e.u, e.weight, e.via};
  }
}

}  // namespace viptree
