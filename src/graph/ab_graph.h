// The accessibility-base (AB) graph of Lu et al. [19], §1.2.2: every
// partition is a vertex and every door is a labelled edge between the two
// partitions it connects. The AB graph captures connectivity (not
// distances) and is the navigation backbone of the DistAw baseline and of
// IP-Tree leaf assembly.

#ifndef VIPTREE_GRAPH_AB_GRAPH_H_
#define VIPTREE_GRAPH_AB_GRAPH_H_

#include <vector>

#include "model/venue.h"
#include "common/span.h"

namespace viptree {

struct ABEdge {
  PartitionId to = kInvalidId;
  DoorId door = kInvalidId;  // the edge label of Fig. 2(b)
};

class ABGraph {
 public:
  explicit ABGraph(const Venue& venue);

  ABGraph(const ABGraph&) = delete;
  ABGraph& operator=(const ABGraph&) = delete;
  ABGraph(ABGraph&&) = default;

  size_t NumVertices() const { return offsets_.size() - 1; }
  size_t NumDirectedEdges() const { return edges_.size(); }

  Span<const ABEdge> EdgesOf(PartitionId p) const {
    return {edges_.data() + offsets_[p], edges_.data() + offsets_[p + 1]};
  }

  uint64_t MemoryBytes() const {
    return offsets_.size() * sizeof(uint32_t) +
           edges_.size() * sizeof(ABEdge);
  }

 private:
  std::vector<uint32_t> offsets_;
  std::vector<ABEdge> edges_;
};

}  // namespace viptree

#endif  // VIPTREE_GRAPH_AB_GRAPH_H_
