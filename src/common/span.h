// Minimal C++17 stand-in for std::span (C++20), covering the subset the
// library needs: a non-owning (pointer, length) view over contiguous door /
// edge / object arrays. Implicitly constructible from std::vector and
// pointer ranges, convertible from Span<T> to Span<const T>.

#ifndef VIPTREE_COMMON_SPAN_H_
#define VIPTREE_COMMON_SPAN_H_

#include <cstddef>
#include <type_traits>

namespace viptree {

template <typename T>
class Span {
 public:
  using element_type = T;
  using value_type = std::remove_cv_t<T>;
  using iterator = T*;
  using const_iterator = const T*;

  constexpr Span() noexcept : data_(nullptr), size_(0) {}
  constexpr Span(T* data, size_t size) noexcept : data_(data), size_(size) {}

  // Templated on the end pointer so that Span(ptr, 0) — where literal 0
  // converts equally well to size_t and to T* — unambiguously picks the
  // (pointer, count) constructor above.
  template <typename End,
            typename = std::enable_if_t<std::is_pointer_v<End>>>
  constexpr Span(T* first, End last) noexcept
      : data_(first), size_(static_cast<size_t>(last - first)) {}

  template <size_t N>
  constexpr Span(T (&arr)[N]) noexcept : data_(arr), size_(N) {}

  // From any contiguous container (std::vector, std::array, another Span)
  // whose data() pointer converts to T*. The const overload participates for
  // Span<const T> only, so a Span<T> can never silently alias const data.
  // Rvalue containers therefore bind only when the element type is const —
  // the same rule as C++20 std::span ([span.cons]: borrowed_range<R> ||
  // is_const_v<element_type>), which permits the common pass-a-temporary-
  // to-a-Span-parameter pattern while rejecting mutable dangling views.
  template <typename Container,
            typename = std::enable_if_t<std::is_convertible_v<
                decltype(std::declval<Container&>().data()), T*>>>
  constexpr Span(Container& c) noexcept : data_(c.data()), size_(c.size()) {}

  template <typename Container,
            typename = std::enable_if_t<std::is_convertible_v<
                decltype(std::declval<const Container&>().data()), T*>>,
            typename = void>
  constexpr Span(const Container& c) noexcept
      : data_(c.data()), size_(c.size()) {}

  constexpr T* data() const noexcept { return data_; }
  constexpr size_t size() const noexcept { return size_; }
  constexpr bool empty() const noexcept { return size_ == 0; }

  constexpr T* begin() const noexcept { return data_; }
  constexpr T* end() const noexcept { return data_ + size_; }

  constexpr T& operator[](size_t i) const { return data_[i]; }
  constexpr T& front() const { return data_[0]; }
  constexpr T& back() const { return data_[size_ - 1]; }

 private:
  T* data_;
  size_t size_;
};

}  // namespace viptree

#endif  // VIPTREE_COMMON_SPAN_H_
