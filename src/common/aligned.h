// Cache-line-aligned allocation for the flat index buffers. The SIMD
// kernels (common/kernels.h) use unaligned loads, so alignment is a
// performance contract, not a correctness one: a 64-byte-aligned base
// keeps every FlatMatrix row starting at a predictable cache-line phase
// and lets hardware prefetchers stream whole lines, and it guarantees a
// vector load never straddles more lines than it must.
//
// Owning Storage<T> buffers allocate through AlignedAllocator<T, 64>;
// mmap'd snapshot views are page-aligned by the kernel (heap-fallback
// arenas align to 64 explicitly, io/mmap_arena.cc).

#ifndef VIPTREE_COMMON_ALIGNED_H_
#define VIPTREE_COMMON_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace viptree {

// Alignment of every owning index buffer: one x86 cache line, and twice
// the 32-byte AVX2 vector width.
inline constexpr size_t kIndexBufferAlign = 64;

template <typename T, size_t Align = kIndexBufferAlign>
class AlignedAllocator {
 public:
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of 2");
  static_assert(Align >= alignof(T), "alignment below the type's natural one");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Align));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

// The backing container of owning Storage<T> buffers.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, kIndexBufferAlign>>;

}  // namespace viptree

#endif  // VIPTREE_COMMON_ALIGNED_H_
