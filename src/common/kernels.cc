#include "common/kernels.h"

#include <cstdlib>
#include <cstring>
#include <limits>

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define VIPTREE_KERNELS_X86 1
#include <immintrin.h>
#else
#define VIPTREE_KERNELS_X86 0
#endif

namespace viptree {
namespace kernels {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// Scalar reference paths. These are the semantics: simple strict-compare
// loops the compiler can autovectorize, written to match the historical
// hand-rolled loops in knn_query.cc / distance_query.cc bit-for-bit.
// ---------------------------------------------------------------------------

void MinPlusRowScalar(double* best, const double* row, double add, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const double cand = add + row[i];
    if (cand < best[i]) best[i] = cand;
  }
}

double RowMinScalar(const double* v, size_t n) {
  double best = kInf;
  for (size_t i = 0; i < n; ++i) {
    if (v[i] < best) best = v[i];
  }
  return best;
}

size_t RowArgMinScalar(const double* v, size_t n) {
  size_t best = 0;
  for (size_t i = 1; i < n; ++i) {
    if (v[i] < v[best]) best = i;
  }
  return best;
}

void MinPlusGatherF32Scalar(double* best, const float* row,
                            const int32_t* idx, double add, size_t n) {
  for (size_t c = 0; c < n; ++c) {
    const double cand = add + row[idx[c]];
    if (cand < best[c]) best[c] = cand;
  }
}

void MinPlusGatherArgF32Scalar(double* best, int32_t* best_src, int32_t tag,
                               const float* row, const int32_t* idx,
                               double add, size_t n) {
  for (size_t c = 0; c < n; ++c) {
    const double cand = add + row[idx[c]];
    if (cand < best[c]) {
      best[c] = cand;
      best_src[c] = tag;
    }
  }
}

double JoinMinIndexedF32Scalar(double base, const float* row,
                               const int32_t* idx, const double* addend,
                               size_t n) {
  double best = kInf;
  for (size_t j = 0; j < n; ++j) {
    const double cand = (base + row[idx[j]]) + addend[j];
    if (cand < best) best = cand;
  }
  return best;
}

void MinPlusRowMultiScalar(double* best, const float* row, const double* adds,
                           size_t num_targets, size_t n) {
  for (size_t t = 0; t < num_targets; ++t) {
    double* best_row = best + t * n;
    const double add = adds[t];
    for (size_t c = 0; c < n; ++c) {
      const double cand = add + row[c];
      if (cand < best_row[c]) best_row[c] = cand;
    }
  }
}

void JoinMinRowsMultiScalar(const double* joined, const double* addends,
                            size_t num_targets, size_t n, double* out) {
  for (size_t t = 0; t < num_targets; ++t) {
    const double* addend = addends + t * n;
    double best = out[t];
    for (size_t j = 0; j < n; ++j) {
      const double cand = joined[j] + addend[j];
      if (cand < best) best = cand;
    }
    out[t] = best;
  }
}

size_t FilterLeqScalar(const double* v, size_t n, double radius,
                       int32_t* out) {
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    if (v[i] <= radius) out[k++] = static_cast<int32_t>(i);
  }
  return k;
}

#if VIPTREE_KERNELS_X86

// ---------------------------------------------------------------------------
// AVX2 paths. Every min update is a cmp(LT) + blend — not minpd — so lane
// semantics are exactly the scalar `cand < best ? cand : best`, including
// the first-wins behaviour on equal candidates. All loads are unaligned;
// rows aliased out of an 8-aligned snapshot arena are as legal as the
// 64-aligned owning buffers.
// ---------------------------------------------------------------------------

// Compacts a 4x64-bit compare mask into the low 4x32-bit lanes (for
// blending int32 tag arrays against a double compare).
__attribute__((target("avx2"))) inline __m128i Mask64To32(__m256d mask) {
  const __m256i perm = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  return _mm256_castsi256_si128(
      _mm256_permutevar8x32_epi32(_mm256_castpd_si256(mask), perm));
}

// Four row cells picked by idx[c..c+3], as scalar loads. Measured faster
// than the vpgatherdps hardware gather at every size on current Intel and
// AMD server parts (the gather microcodes to the same loads plus overhead);
// values are identical either way.
__attribute__((target("avx2"))) inline __m128 Gather4(const float* row,
                                                      const int32_t* idx,
                                                      size_t c) {
  return _mm_setr_ps(row[idx[c]], row[idx[c + 1]], row[idx[c + 2]],
                     row[idx[c + 3]]);
}

__attribute__((target("avx2"))) void MinPlusRowAvx2(double* best,
                                                    const double* row,
                                                    double add, size_t n) {
  const __m256d vadd = _mm256_set1_pd(add);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d cand = _mm256_add_pd(vadd, _mm256_loadu_pd(row + i));
    const __m256d b = _mm256_loadu_pd(best + i);
    const __m256d lt = _mm256_cmp_pd(cand, b, _CMP_LT_OQ);
    _mm256_storeu_pd(best + i, _mm256_blendv_pd(b, cand, lt));
  }
  for (; i < n; ++i) {
    const double cand = add + row[i];
    if (cand < best[i]) best[i] = cand;
  }
}

__attribute__((target("avx2"))) double RowMinAvx2(const double* v, size_t n) {
  if (n < 4) return RowMinScalar(v, n);
  __m256d acc = _mm256_loadu_pd(v);
  size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(v + i);
    const __m256d lt = _mm256_cmp_pd(x, acc, _CMP_LT_OQ);
    acc = _mm256_blendv_pd(acc, x, lt);
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double best = lanes[0];
  for (int k = 1; k < 4; ++k) {
    if (lanes[k] < best) best = lanes[k];
  }
  for (; i < n; ++i) {
    if (v[i] < best) best = v[i];
  }
  return best;
}

__attribute__((target("avx2"))) size_t RowArgMinAvx2(const double* v,
                                                     size_t n) {
  if (n < 8) return RowArgMinScalar(v, n);
  // Two passes: the value of the minimum, then the first position holding
  // it. Equal doubles (no -0.0 in distance data) are bit-identical, so an
  // exact-equality scan finds precisely the scalar argmin.
  const double m = RowMinAvx2(v, n);
  const __m256d vm = _mm256_set1_pd(m);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const int mask =
        _mm256_movemask_pd(_mm256_cmp_pd(_mm256_loadu_pd(v + i), vm,
                                         _CMP_EQ_OQ));
    if (mask != 0) return i + static_cast<size_t>(__builtin_ctz(mask));
  }
  for (; i < n; ++i) {
    if (v[i] == m) return i;
  }
  return n - 1;  // unreachable for n > 0
}

__attribute__((target("avx2"))) void MinPlusGatherF32Avx2(
    double* best, const float* row, const int32_t* idx, double add,
    size_t n) {
  const __m256d vadd = _mm256_set1_pd(add);
  size_t c = 0;
  for (; c + 4 <= n; c += 4) {
    const __m256d cand =
        _mm256_add_pd(vadd, _mm256_cvtps_pd(Gather4(row, idx, c)));
    const __m256d b = _mm256_loadu_pd(best + c);
    const __m256d lt = _mm256_cmp_pd(cand, b, _CMP_LT_OQ);
    _mm256_storeu_pd(best + c, _mm256_blendv_pd(b, cand, lt));
  }
  for (; c < n; ++c) {
    const double cand = add + row[idx[c]];
    if (cand < best[c]) best[c] = cand;
  }
}

__attribute__((target("avx2"))) void MinPlusGatherArgF32Avx2(
    double* best, int32_t* best_src, int32_t tag, const float* row,
    const int32_t* idx, double add, size_t n) {
  const __m256d vadd = _mm256_set1_pd(add);
  const __m128i vtag = _mm_set1_epi32(tag);
  size_t c = 0;
  for (; c + 4 <= n; c += 4) {
    const __m256d cand =
        _mm256_add_pd(vadd, _mm256_cvtps_pd(Gather4(row, idx, c)));
    const __m256d b = _mm256_loadu_pd(best + c);
    const __m256d lt = _mm256_cmp_pd(cand, b, _CMP_LT_OQ);
    _mm256_storeu_pd(best + c, _mm256_blendv_pd(b, cand, lt));
    const __m128i m32 = Mask64To32(lt);
    const __m128i src =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(best_src + c));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(best_src + c),
                     _mm_blendv_epi8(src, vtag, m32));
  }
  for (; c < n; ++c) {
    const double cand = add + row[idx[c]];
    if (cand < best[c]) {
      best[c] = cand;
      best_src[c] = tag;
    }
  }
}

__attribute__((target("avx2"))) double JoinMinIndexedF32Avx2(
    double base, const float* row, const int32_t* idx, const double* addend,
    size_t n) {
  const __m256d vbase = _mm256_set1_pd(base);
  __m256d acc = _mm256_set1_pd(kInf);
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d cand = _mm256_add_pd(
        _mm256_add_pd(vbase, _mm256_cvtps_pd(Gather4(row, idx, j))),
        _mm256_loadu_pd(addend + j));
    const __m256d lt = _mm256_cmp_pd(cand, acc, _CMP_LT_OQ);
    acc = _mm256_blendv_pd(acc, cand, lt);
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double best = lanes[0];
  for (int k = 1; k < 4; ++k) {
    if (lanes[k] < best) best = lanes[k];
  }
  for (; j < n; ++j) {
    const double cand = (base + row[idx[j]]) + addend[j];
    if (cand < best) best = cand;
  }
  return best;
}

__attribute__((target("avx2"))) void MinPlusRowMultiAvx2(
    double* best, const float* row, const double* adds, size_t num_targets,
    size_t n) {
  for (size_t t = 0; t < num_targets; ++t) {
    double* best_row = best + t * n;
    const double add = adds[t];
    const __m256d vadd = _mm256_set1_pd(add);
    size_t c = 0;
    for (; c + 4 <= n; c += 4) {
      const __m256d cand =
          _mm256_add_pd(vadd, _mm256_cvtps_pd(_mm_loadu_ps(row + c)));
      const __m256d b = _mm256_loadu_pd(best_row + c);
      const __m256d lt = _mm256_cmp_pd(cand, b, _CMP_LT_OQ);
      _mm256_storeu_pd(best_row + c, _mm256_blendv_pd(b, cand, lt));
    }
    for (; c < n; ++c) {
      const double cand = add + row[c];
      if (cand < best_row[c]) best_row[c] = cand;
    }
  }
}

__attribute__((target("avx2"))) void JoinMinRowsMultiAvx2(
    const double* joined, const double* addends, size_t num_targets,
    size_t n, double* out) {
  for (size_t t = 0; t < num_targets; ++t) {
    const double* addend = addends + t * n;
    __m256d acc = _mm256_set1_pd(kInf);
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const __m256d cand = _mm256_add_pd(_mm256_loadu_pd(joined + j),
                                         _mm256_loadu_pd(addend + j));
      const __m256d lt = _mm256_cmp_pd(cand, acc, _CMP_LT_OQ);
      acc = _mm256_blendv_pd(acc, cand, lt);
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, acc);
    double best = lanes[0];
    for (int k = 1; k < 4; ++k) {
      if (lanes[k] < best) best = lanes[k];
    }
    for (; j < n; ++j) {
      const double cand = joined[j] + addend[j];
      if (cand < best) best = cand;
    }
    if (best < out[t]) out[t] = best;
  }
}

__attribute__((target("avx2"))) size_t FilterLeqAvx2(const double* v,
                                                     size_t n, double radius,
                                                     int32_t* out) {
  const __m256d vr = _mm256_set1_pd(radius);
  size_t k = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    int mask = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(v + i), vr, _CMP_LE_OQ));
    while (mask != 0) {
      const int bit = __builtin_ctz(static_cast<unsigned>(mask));
      out[k++] = static_cast<int32_t>(i + static_cast<size_t>(bit));
      mask &= mask - 1;
    }
  }
  for (; i < n; ++i) {
    if (v[i] <= radius) out[k++] = static_cast<int32_t>(i);
  }
  return k;
}

#endif  // VIPTREE_KERNELS_X86

// ---------------------------------------------------------------------------
// Runtime dispatch: one function-pointer table selected at first use.
// ---------------------------------------------------------------------------

struct KernelTable {
  void (*min_plus_row)(double*, const double*, double, size_t);
  double (*row_min)(const double*, size_t);
  size_t (*row_arg_min)(const double*, size_t);
  void (*min_plus_gather_f32)(double*, const float*, const int32_t*, double,
                              size_t);
  void (*min_plus_gather_arg_f32)(double*, int32_t*, int32_t, const float*,
                                  const int32_t*, double, size_t);
  double (*join_min_indexed_f32)(double, const float*, const int32_t*,
                                 const double*, size_t);
  void (*min_plus_row_multi)(double*, const float*, const double*, size_t,
                             size_t);
  void (*join_min_rows_multi)(const double*, const double*, size_t, size_t,
                              double*);
  size_t (*filter_leq)(const double*, size_t, double, int32_t*);
  const char* name;
};

constexpr KernelTable kScalarTable = {
    MinPlusRowScalar,       RowMinScalar,
    RowArgMinScalar,        MinPlusGatherF32Scalar,
    MinPlusGatherArgF32Scalar, JoinMinIndexedF32Scalar,
    MinPlusRowMultiScalar,  JoinMinRowsMultiScalar,
    FilterLeqScalar,        "scalar"};

#if VIPTREE_KERNELS_X86
constexpr KernelTable kAvx2Table = {
    MinPlusRowAvx2,       RowMinAvx2,
    RowArgMinAvx2,        MinPlusGatherF32Avx2,
    MinPlusGatherArgF32Avx2, JoinMinIndexedF32Avx2,
    MinPlusRowMultiAvx2,  JoinMinRowsMultiAvx2,
    FilterLeqAvx2,        "avx2"};
#endif

const KernelTable* BestTable() {
#if VIPTREE_KERNELS_X86
  if (__builtin_cpu_supports("avx2")) return &kAvx2Table;
#endif
  return &kScalarTable;
}

bool ScalarForcedByEnv() {
  const char* e = std::getenv("VIPTREE_FORCE_SCALAR");
  return e != nullptr && *e != '\0' && std::strcmp(e, "0") != 0;
}

// Mutable so ForceScalarForTest can repoint it; selected once at first
// kernel call (reads the VIPTREE_FORCE_SCALAR environment variable).
const KernelTable*& ActiveTable() {
  static const KernelTable* table =
      ScalarForcedByEnv() ? &kScalarTable : BestTable();
  return table;
}

}  // namespace

void MinPlusRow(double* best, const double* row, double add, size_t n) {
  ActiveTable()->min_plus_row(best, row, add, n);
}

double RowMin(const double* v, size_t n) {
  return ActiveTable()->row_min(v, n);
}

size_t RowArgMin(const double* v, size_t n) {
  return ActiveTable()->row_arg_min(v, n);
}

void MinPlusGatherF32(double* best, const float* row, const int32_t* idx,
                      double add, size_t n) {
  ActiveTable()->min_plus_gather_f32(best, row, idx, add, n);
}

void MinPlusGatherArgF32(double* best, int32_t* best_src, int32_t tag,
                         const float* row, const int32_t* idx, double add,
                         size_t n) {
  ActiveTable()->min_plus_gather_arg_f32(best, best_src, tag, row, idx, add,
                                         n);
}

double JoinMinIndexedF32(double base, const float* row, const int32_t* idx,
                         const double* addend, size_t n) {
  return ActiveTable()->join_min_indexed_f32(base, row, idx, addend, n);
}

void MinPlusRowMulti(double* best, const float* row, const double* adds,
                     size_t num_targets, size_t n) {
  ActiveTable()->min_plus_row_multi(best, row, adds, num_targets, n);
}

void JoinMinRowsMulti(const double* joined, const double* addends,
                      size_t num_targets, size_t n, double* out) {
  ActiveTable()->join_min_rows_multi(joined, addends, num_targets, n, out);
}

size_t FilterLeq(const double* v, size_t n, double radius, int32_t* out) {
  return ActiveTable()->filter_leq(v, n, radius, out);
}

bool SimdEnabled() { return ActiveTable() != &kScalarTable; }

const char* ActivePathName() { return ActiveTable()->name; }

void ForceScalarForTest(bool force) {
  ActiveTable() = force ? &kScalarTable : BestTable();
}

}  // namespace kernels
}  // namespace viptree
