// Deterministic random number generation for generators, workloads and tests.
//
// A thin wrapper over std::mt19937_64 so every workload in the repository is
// reproducible from an explicit seed (benchmarks and tests never consume
// global entropy).

#ifndef VIPTREE_COMMON_RNG_H_
#define VIPTREE_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace viptree {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform real in [lo, hi).
  double UniformReal(double lo, double hi);

  // Bernoulli trial with probability p of returning true.
  bool Chance(double p);

  // Uniform index in [0, n). Requires n > 0.
  size_t UniformIndex(size_t n);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace viptree

#endif  // VIPTREE_COMMON_RNG_H_
