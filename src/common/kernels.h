// Vectorized distance kernels for the hot read path. The VIP-Tree query
// algorithms reduce to a handful of dense row scans — min-plus updates
// over distance-matrix rows, row min/argmin reductions, and radius
// filters — and every one of them is expressed here exactly once, as an
// autovectorization-friendly scalar loop with an explicit AVX2 twin
// behind runtime dispatch.
//
// Bit-identity contract: for any input free of NaNs and negative zeros
// (all VIP-Tree distances are >= 0 or +inf), the AVX2 path returns
// results bit-identical to the scalar path, which in turn reproduces the
// historical hand-written loops:
//   * min updates use strict `cand < best` compare-and-select, so equal
//     candidates never replace an incumbent (first-wins tie semantics,
//     preserved lane-exactly via cmp/blend instead of minpd);
//   * every sum keeps the scalar association, e.g. the LCA join computes
//     (base + cell) + addend[j] just like the historical loop;
//   * reductions are order-insensitive because floating min over a
//     NaN-free multiset is associative and commutative.
// The differential suite (tests/kernel_differential_test.cc) enforces
// this end-to-end; VIPTREE_FORCE_SCALAR=1 (or ForceScalarForTest) pins
// the scalar path for A/B runs.
//
// All kernels are allocation-free and safe on unaligned pointers: the
// AVX2 paths use unaligned loads/gathers, so they accept both 64-byte-
// aligned owning buffers (common/aligned.h) and 8-byte-aligned rows
// aliased out of an mmap'd snapshot.

#ifndef VIPTREE_COMMON_KERNELS_H_
#define VIPTREE_COMMON_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace viptree {
namespace kernels {

// best[i] = min(best[i], add + row[i]) for i in [0, n). The kNN leaf
// scan: `row` is one door's object-distance row, `add` the query→door
// distance.
void MinPlusRow(double* best, const double* row, double add, size_t n);

// Minimum of v[0..n); +inf when n == 0.
double RowMin(const double* v, size_t n);

// First index attaining the minimum of v[0..n). Requires n > 0.
size_t RowArgMin(const double* v, size_t n);

// best[c] = min(best[c], add + row[idx[c]]) for c in [0, n) — the
// loop-swapped form of the matrix ascent: one source door's float row,
// gathered through a column-index map, folded into double accumulators.
void MinPlusGatherF32(double* best, const float* row, const int32_t* idx,
                      double add, size_t n);

// As MinPlusGatherF32, and wherever the candidate strictly improves
// best[c], records best_src[c] = tag. Calling with ascending tags
// reproduces the first-wins argmin of the historical column-outer loop.
void MinPlusGatherArgF32(double* best, int32_t* best_src, int32_t tag,
                         const float* row, const int32_t* idx, double add,
                         size_t n);

// min over j in [0, n) of (base + row[idx[j]]) + addend[j] — one source
// door's contribution to an LCA join. The parenthesization matches the
// historical scalar loop bit-for-bit.
double JoinMinIndexedF32(double base, const float* row, const int32_t* idx,
                         const double* addend, size_t n);

// Multi-target min-plus broadcast: one shared float row folded into
// `num_targets` stacked double accumulator rows (row-major, stride n):
//   best[t*n + c] = min(best[t*n + c], adds[t] + row[c])
// for every target t and column c, strict-< first-wins per cell. The
// coalesced §3.1 descent: `row` is one seed door's extended-matrix row,
// adds[t] the per-point point→door leg. Candidates per (t, c) match the
// single-point loop (`adds[t] + row[c]`, same association), so results
// are bit-identical to num_targets independent scans.
void MinPlusRowMulti(double* best, const float* row, const double* adds,
                     size_t num_targets, size_t n);

// Batched LCA join over `num_targets` target columns sharing one folded
// source row: out[t] = min(out[t], min over j of joined[j] +
// addends[t*n + j]) with strict-< first-wins per target. `joined` holds
// the source-side fold min_i(sdist[i] + cell[i][j]) — min distributes
// over the monotone rounded add, so this equals the per-target
// JoinMinIndexedF32 sweep bit-for-bit.
void JoinMinRowsMulti(const double* joined, const double* addends,
                      size_t num_targets, size_t n, double* out);

// Appends every index i with v[i] <= radius to out (ascending; caller
// provides room for n entries) and returns the count. The range-query
// candidate filter.
size_t FilterLeq(const double* v, size_t n, double radius, int32_t* out);

// --- Prefetch hints (used in the kNN branch-and-bound descent). ---------

inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

// Prefetches the first `bytes` of a buffer, one cache line at a time.
inline void PrefetchReadRange(const void* p, size_t bytes) {
  const char* c = static_cast<const char*>(p);
  for (size_t off = 0; off < bytes; off += 64) PrefetchRead(c + off);
}

// --- Dispatch control. --------------------------------------------------

// True when the AVX2 paths are active (CPU support present, not forced
// off). Informational; call sites never branch on it.
bool SimdEnabled();

// Human-readable name of the active path: "avx2" or "scalar".
const char* ActivePathName();

// Pins the scalar path (true) or restores default dispatch (false).
// Testing/benchmark hook; same effect as the VIPTREE_FORCE_SCALAR=1
// environment variable. Not thread-safe: call before issuing queries.
void ForceScalarForTest(bool force);

}  // namespace kernels
}  // namespace viptree

#endif  // VIPTREE_COMMON_KERNELS_H_
