#include "common/rng.h"

#include "common/check.h"

namespace viptree {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  VIPTREE_DCHECK(lo <= hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::UniformReal(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

bool Rng::Chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

size_t Rng::UniformIndex(size_t n) {
  VIPTREE_DCHECK(n > 0);
  std::uniform_int_distribution<size_t> dist(0, n - 1);
  return dist(engine_);
}

}  // namespace viptree
