// Small helpers shared by benchmarks and index-size reporting: a wall-clock
// timer and summary statistics over latency samples.

#ifndef VIPTREE_COMMON_STATS_H_
#define VIPTREE_COMMON_STATS_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace viptree {

// Wall-clock stopwatch with microsecond resolution.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  // Elapsed time since construction or the last Reset, in microseconds.
  double ElapsedMicros() const;
  double ElapsedMillis() const { return ElapsedMicros() / 1000.0; }
  double ElapsedSeconds() const { return ElapsedMicros() / 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Summary statistics over a sample of doubles (latencies, sizes, counts).
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

// Computes a Summary; the input vector is copied and sorted internally.
Summary Summarize(const std::vector<double>& samples);

// Hit/miss/evict counters of a memoization cache (core/distance_cache.h),
// aggregatable across shards and caches (ServiceStats sums one per venue).
struct CacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;

  uint64_t lookups() const { return hits + misses; }
  double hit_rate() const {
    return lookups() == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups());
  }
  CacheCounters& operator+=(const CacheCounters& other) {
    hits += other.hits;
    misses += other.misses;
    insertions += other.insertions;
    evictions += other.evictions;
    return *this;
  }
};

// Pretty-prints a byte count as B / KB / MB with two decimals.
// Returns e.g. "612.34 MB".
std::string HumanBytes(uint64_t bytes);

}  // namespace viptree

#endif  // VIPTREE_COMMON_STATS_H_
