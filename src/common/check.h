// Lightweight invariant-checking macros (no exceptions, Google-style CHECK).
//
// VIPTREE_CHECK is always on and aborts with a message on failure; it guards
// conditions that indicate caller misuse or corrupted state. VIPTREE_DCHECK
// compiles away in NDEBUG builds and guards internal invariants on hot paths.

#ifndef VIPTREE_COMMON_CHECK_H_
#define VIPTREE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define VIPTREE_CHECK(cond)                                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "VIPTREE_CHECK failed: %s at %s:%d\n", #cond,     \
                   __FILE__, __LINE__);                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define VIPTREE_CHECK_MSG(cond, msg)                                         \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "VIPTREE_CHECK failed: %s (%s) at %s:%d\n", #cond, \
                   msg, __FILE__, __LINE__);                                 \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define VIPTREE_DCHECK(cond) \
  do {                       \
  } while (0)
#else
#define VIPTREE_DCHECK(cond) VIPTREE_CHECK(cond)
#endif

#endif  // VIPTREE_COMMON_CHECK_H_
