#include "common/stats.h"

#include <algorithm>
#include <cstdio>
#include <string>

namespace viptree {

double Timer::ElapsedMicros() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start_)
             .count() /
         1000.0;
}

Summary Summarize(const std::vector<double>& samples) {
  Summary s;
  if (samples.empty()) return s;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  double total = 0.0;
  for (double v : sorted) total += v;
  s.mean = total / static_cast<double>(sorted.size());
  s.min = sorted.front();
  s.max = sorted.back();
  auto pct = [&sorted](double p) {
    size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
  };
  s.p50 = pct(0.50);
  s.p95 = pct(0.95);
  s.p99 = pct(0.99);
  return s;
}

std::string HumanBytes(uint64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", b / (1024.0 * 1024.0));
  } else if (bytes >= (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", b / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return std::string(buf);
}

}  // namespace viptree
