// Storage<T>: the backing buffer of every flat index array — either an
// *owning* buffer (a 64-byte-aligned vector, the result of index
// construction or a copying snapshot decode; common/aligned.h) or a *view*
// into an immutable arena (a memory-mapped snapshot file, io/mmap_arena.h). Query code reads both
// forms through the same const interface, so the whole read path is
// agnostic to whether an index was built in-process or mapped from disk.
//
// Mutation rules: the small mutating surface (assign/resize/append/
// operator[] non-const) exists for index *builders* and is only legal on
// owning storage — views are immutable by construction (the arena is mapped
// read-only). Misuse is caught by VIPTREE_DCHECK in debug builds and by the
// read-only mapping at runtime.
//
// Lifetime rules: a view does NOT keep its arena alive. Whoever creates
// views into an arena (the snapshot decoder) must guarantee the arena
// outlives every index built from them — engine::VenueBundle does this by
// holding a shared_ptr to the arena alongside the indexes.
//
// Copying a Storage always deep-copies into an owning buffer (views do not
// silently alias on copy); moving transfers the buffer or the view as-is.

#ifndef VIPTREE_COMMON_STORAGE_H_
#define VIPTREE_COMMON_STORAGE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/aligned.h"
#include "common/check.h"
#include "common/span.h"

namespace viptree {

template <typename T>
class Storage {
 public:
  Storage() = default;

  // Owning: copies the vector into a 64-byte-aligned buffer (implicit, so
  // builder code can assign the vectors it constructs straight into index
  // members). The copy is a build/load-time cost only; hot paths fill
  // through the aligned ctor below or the mutating surface.
  Storage(std::vector<T> values)  // NOLINT(google-explicit-constructor)
      : owned_(values.begin(), values.end()),
        data_(owned_.data()),
        size_(owned_.size()),
        owning_(true) {}

  // Owning: adopts an already-aligned buffer without copying.
  Storage(AlignedVector<T> values)  // NOLINT(google-explicit-constructor)
      : owned_(std::move(values)),
        data_(owned_.data()),
        size_(owned_.size()),
        owning_(true) {}

  // Owning: a filled aligned buffer, allocated directly (the FlatMatrix
  // fill constructor and other sized builder paths).
  Storage(size_t count, const T& fill)
      : owned_(count, fill),
        data_(owned_.data()),
        size_(owned_.size()),
        owning_(true) {}

  // Non-owning view into an immutable arena the caller keeps alive.
  static Storage View(Span<const T> bytes) {
    Storage s;
    s.data_ = bytes.data();
    s.size_ = bytes.size();
    s.owning_ = false;
    return s;
  }

  // Deep copy: the result always owns its buffer.
  Storage(const Storage& other)
      : owned_(other.begin(), other.end()),
        data_(owned_.data()),
        size_(owned_.size()),
        owning_(true) {}
  Storage& operator=(const Storage& other) {
    if (this != &other) *this = Storage(other);
    return *this;
  }

  Storage(Storage&& other) noexcept
      : owned_(std::move(other.owned_)),
        data_(other.data_),
        size_(other.size_),
        owning_(other.owning_) {
    other.Reset();
  }
  Storage& operator=(Storage&& other) noexcept {
    if (this != &other) {
      owned_ = std::move(other.owned_);
      data_ = other.data_;
      size_ = other.size_;
      owning_ = other.owning_;
      other.Reset();
    }
    return *this;
  }

  bool owning() const { return owning_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  const T& operator[](size_t i) const {
    VIPTREE_DCHECK(i < size_);
    return data_[i];
  }
  const T& front() const { return (*this)[0]; }
  const T& back() const { return (*this)[size_ - 1]; }

  // (Span's contiguous-container constructor also accepts a Storage
  // directly, via data()/size().)
  Span<const T> span() const { return {data_, size_}; }

  // Logical footprint: the bytes addressable through this storage. For an
  // owning buffer these are private heap bytes; for a view they are
  // file-backed pages of the arena, resident only once touched.
  uint64_t MemoryBytes() const { return uint64_t{size_} * sizeof(T); }

  // --- Owning-only mutation, for index builders. -------------------------

  T* mutable_data() {
    VIPTREE_DCHECK(owning_);
    return owned_.data();
  }
  T& operator[](size_t i) {
    VIPTREE_DCHECK(owning_ && i < size_);
    return owned_[i];
  }

  void assign(size_t count, const T& value) {
    Adopt([&] { owned_.assign(count, value); });
  }
  template <typename It>
  void assign(It first, It last) {
    Adopt([&] { owned_.assign(first, last); });
  }
  void resize(size_t count, const T& value = T()) {
    VIPTREE_DCHECK(owning_);
    Adopt([&] { owned_.resize(count, value); });
  }
  void reserve(size_t count) {
    VIPTREE_DCHECK(owning_);
    owned_.reserve(count);
  }
  void push_back(const T& value) {
    VIPTREE_DCHECK(owning_);
    Adopt([&] { owned_.push_back(value); });
  }
  template <typename It>
  void append(It first, It last) {
    VIPTREE_DCHECK(owning_);
    Adopt([&] { owned_.insert(owned_.end(), first, last); });
  }

 private:
  template <typename Fn>
  void Adopt(Fn&& mutate) {
    mutate();
    data_ = owned_.data();
    size_ = owned_.size();
    owning_ = true;
  }

  void Reset() {
    owned_.clear();
    data_ = nullptr;
    size_ = 0;
    owning_ = true;
  }

  AlignedVector<T> owned_;
  const T* data_ = nullptr;
  size_t size_ = 0;
  bool owning_ = true;
};

}  // namespace viptree

#endif  // VIPTREE_COMMON_STORAGE_H_
