#!/usr/bin/env bash
# Records the standard benchmark quartet — bench_distance_cache,
# bench_city_scale, bench_coalesce, bench_net_throughput — into a single
# machine-readable BENCH_10.json at the repo root (or at $1 if given).
#
# The benches themselves are plain printf programs, so this script owns the
# JSON: per-bench exit code, wall time, and the raw output lines verbatim,
# plus the coalescing speedup ratios parsed out of bench_coalesce (the
# headline number the execution planner is judged by).
#
# Usage:
#   tools/record_bench.sh [OUT.json]
# Env:
#   BUILD_DIR         build tree holding the bench binaries (default: build)
#   VIPTREE_SCALE     forwarded to the benches (venue scale factor)
#   VIPTREE_QUERIES   forwarded to the benches (queries per workload)

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
OUT="${1:-$ROOT/BENCH_10.json}"

BENCHES=(bench_distance_cache bench_city_scale bench_coalesce bench_net_throughput)
for b in "${BENCHES[@]}"; do
  if [ ! -x "$BUILD/$b" ]; then
    echo "record_bench: missing $BUILD/$b — build first:" >&2
    echo "  cmake -B \"$BUILD\" -S \"$ROOT\" && cmake --build \"$BUILD\" -j" >&2
    exit 1
  fi
done

# Escape a line for embedding in a JSON string (bench output is plain
# ASCII, so backslash + quote cover it).
json_escape() { sed -e 's/\\/\\\\/g' -e 's/"/\\"/g'; }

# Emit the file at stdin as a JSON array of strings, indented for diffing.
emit_lines() {
  printf '['
  local first=1 line
  while IFS= read -r line; do
    if [ "$first" -eq 1 ]; then first=0; else printf ','; fi
    printf '\n        "%s"' "$(printf '%s' "$line" | json_escape)"
  done
  printf '\n      ]'
}

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

declare -A wall exit_code
for b in "${BENCHES[@]}"; do
  echo "record_bench: running $b ..." >&2
  start=$(date +%s)
  rc=0
  "$BUILD/$b" >"$tmpdir/$b.out" 2>&1 || rc=$?
  wall[$b]=$(( $(date +%s) - start ))
  exit_code[$b]=$rc
  if [ "$rc" -ne 0 ]; then
    echo "record_bench: $b exited with $rc" >&2
    cat "$tmpdir/$b.out" >&2
  fi
done

# The trailing "N.NNx" of every `coalesced` row, in print order
# (dataset x workload).
speedups=$(awk '$1 == "coalesced" { sub(/x$/, "", $NF); printf "%s%s", sep, $NF; sep=", " }' \
  "$tmpdir/bench_coalesce.out")

# The headline of bench_net_throughput: serial-p50 loopback overhead of
# the shard and router tiers over the in-process baseline.
net_overhead=$(grep '^loopback overhead' "$tmpdir/bench_net_throughput.out" \
  | head -1 | json_escape)

git_sha=$(git -C "$ROOT" rev-parse HEAD 2>/dev/null || echo unknown)

{
  printf '{\n'
  printf '  "bench_set": 10,\n'
  printf '  "generated_utc": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "git_sha": "%s",\n' "$git_sha"
  printf '  "env": {\n'
  printf '    "viptree_scale": "%s",\n' "${VIPTREE_SCALE:-default}"
  printf '    "viptree_queries": "%s"\n' "${VIPTREE_QUERIES:-default}"
  printf '  },\n'
  printf '  "coalesce_speedups": [%s],\n' "$speedups"
  printf '  "net_loopback_overhead": "%s",\n' "$net_overhead"
  printf '  "benches": {\n'
  sep=''
  for b in "${BENCHES[@]}"; do
    printf '%s    "%s": {\n' "$sep" "$b"
    printf '      "exit_code": %s,\n' "${exit_code[$b]}"
    printf '      "wall_seconds": %s,\n' "${wall[$b]}"
    printf '      "output": '
    emit_lines <"$tmpdir/$b.out"
    printf '\n    }'
    sep=$',\n'
  done
  printf '\n  }\n'
  printf '}\n'
} >"$OUT"

echo "record_bench: wrote $OUT" >&2

overall=0
for b in "${BENCHES[@]}"; do
  [ "${exit_code[$b]}" -eq 0 ] || overall=1
done
exit "$overall"
