// viptree_build: construct a VIP-Tree serving bundle offline and persist it
// as a binary snapshot — the "build once" half of the build-once/load-
// anywhere workflow (viptree_query is the other half).
//
// Venue source (pick one):
//   --preset NAME     Table 2 analogue venue: MC, MC-2, Men, Men-2, CL, CL-2
//                     (scaled by --scale, default 1.0)
//   --seed N          seeded random venue (same generator as the
//                     differential test sweeps)
//
// Examples:
//   viptree_build --preset MC --scale 0.1 --objects 32 --out mc.vipsnap
//   viptree_build --seed 7 --objects 16 --keyword-tags 4 --out rand.vipsnap
//   viptree_build --preset MC --out fleet/mc.vipsnap
//       --registry fleet/registry.txt --venue-id mc-hq
//
// With --registry, the snapshot is additionally registered in (or updated
// within) the given manifest under --venue-id (derived from the preset/seed
// when omitted), ready for multi-venue serving via engine::VenueRegistry /
// `viptree_query --registry ... --venue ...`.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "engine/venue_bundle.h"
#include "engine/venue_registry.h"
#include "synth/objects.h"
#include "synth/presets.h"
#include "synth/random_venue.h"

namespace {

using namespace viptree;

struct Args {
  std::string verify;  // snapshot to integrity-check instead of building
  std::string out;
  std::string preset;
  double scale = 1.0;
  bool has_seed = false;
  uint64_t seed = 0;
  size_t objects = 32;
  size_t keyword_tags = 0;  // 0 = no keyword index
  int min_degree = 2;
  uint32_t format_version = io::kFormatVersion;
  std::string registry;   // manifest path; empty = no registration
  std::string venue_id;   // id for the manifest entry
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --out PATH (--preset NAME [--scale S] | --seed N)\n"
      "          [--objects N] [--keyword-tags K] [--min-degree T]\n"
      "          [--format-version V] [--registry MANIFEST [--venue-id ID]]\n"
      "       %s --verify SNAPSHOT\n"
      "\n"
      "Builds a VIP-Tree serving bundle and writes it as a snapshot.\n"
      "  --verify SNAPSHOT   re-check every section CRC of an existing\n"
      "                      snapshot and print a verdict (install-time\n"
      "                      integrity check: fleets that pass it can load\n"
      "                      with checksum verification off)\n"
      "  --preset NAME       Table 2 analogue venue (MC, MC-2, Men, Men-2,\n"
      "                      CL, CL-2), scaled by --scale (default 1.0)\n"
      "  --seed N            seeded random venue instead of a preset\n"
      "  --objects N         indexed objects to place (default 32)\n"
      "  --keyword-tags K    tag objects round-robin with K keywords\n"
      "                      (tag-0..tag-K-1) and build the keyword index\n"
      "  --min-degree T      Algorithm 1 minimum degree t (default 2)\n"
      "  --format-version V  snapshot format: 2 (zero-copy mmap load,\n"
      "                      default) or 1 (legacy copying load)\n"
      "  --registry MANIFEST register the snapshot in this manifest for\n"
      "                      multi-venue serving (created if missing)\n"
      "  --venue-id ID       manifest id (default: derived from the\n"
      "                      preset/seed)\n",
      argv0, argv0);
}

bool Parse(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0],
                     flag.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (flag == "--verify") {
      if ((v = value()) == nullptr) return false;
      args->verify = v;
    } else if (flag == "--out") {
      if ((v = value()) == nullptr) return false;
      args->out = v;
    } else if (flag == "--preset") {
      if ((v = value()) == nullptr) return false;
      args->preset = v;
    } else if (flag == "--scale") {
      if ((v = value()) == nullptr) return false;
      args->scale = std::atof(v);
    } else if (flag == "--seed") {
      if ((v = value()) == nullptr) return false;
      args->has_seed = true;
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--objects") {
      if ((v = value()) == nullptr) return false;
      args->objects = static_cast<size_t>(std::atol(v));
    } else if (flag == "--keyword-tags") {
      if ((v = value()) == nullptr) return false;
      args->keyword_tags = static_cast<size_t>(std::atol(v));
    } else if (flag == "--min-degree") {
      if ((v = value()) == nullptr) return false;
      args->min_degree = std::atoi(v);
    } else if (flag == "--format-version") {
      if ((v = value()) == nullptr) return false;
      args->format_version = static_cast<uint32_t>(std::atol(v));
    } else if (flag == "--registry") {
      if ((v = value()) == nullptr) return false;
      args->registry = v;
    } else if (flag == "--venue-id") {
      if ((v = value()) == nullptr) return false;
      args->venue_id = v;
    } else if (flag == "--help" || flag == "-h") {
      Usage(argv[0]);
      return false;
    } else {
      std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], flag.c_str());
      Usage(argv[0]);
      return false;
    }
  }
  if (!args->verify.empty()) return true;  // verify mode needs nothing else
  if (args->out.empty()) {
    std::fprintf(stderr, "%s: --out is required\n", argv[0]);
    Usage(argv[0]);
    return false;
  }
  if (args->preset.empty() == !args->has_seed) {
    std::fprintf(stderr, "%s: pass exactly one of --preset / --seed\n",
                 argv[0]);
    Usage(argv[0]);
    return false;
  }
  if (args->scale <= 0.0) {
    std::fprintf(stderr, "%s: --scale must be positive\n", argv[0]);
    return false;
  }
  if (args->min_degree < 2) {
    std::fprintf(stderr, "%s: --min-degree must be at least 2\n", argv[0]);
    return false;
  }
  if (args->format_version != io::kFormatVersion &&
      args->format_version != io::kLegacyFormatVersion) {
    std::fprintf(stderr, "%s: --format-version must be 1 or 2\n", argv[0]);
    return false;
  }
  if (!args->venue_id.empty() && args->registry.empty()) {
    std::fprintf(stderr, "%s: --venue-id needs --registry\n", argv[0]);
    return false;
  }
  if (!args->registry.empty() && args->venue_id.empty()) {
    args->venue_id = args->has_seed
                         ? "seed-" + std::to_string(args->seed)
                         : args->preset;
  }
  return true;
}

// Install-time checksum sweep: every section CRC re-checked, per-section
// verdict printed. Exit 0 only when all sections pass — the gate a fleet
// runs before serving the artifact through the trusted (CRC-off) loader.
int VerifyMain(const std::string& path) {
  io::SnapshotVerifyReport report;
  const io::Status status = io::VerifySnapshotFile(path, &report);
  if (report.format_version != 0) {
    std::printf("verifying %s (format v%u, %s)\n", path.c_str(),
                report.format_version, HumanBytes(report.file_bytes).c_str());
    for (const io::SnapshotSectionCheck& section : report.sections) {
      std::printf("  %-4s  %12llu bytes  crc 0x%08X  %s\n",
                  section.name.c_str(),
                  static_cast<unsigned long long>(section.bytes), section.crc,
                  section.ok ? "ok" : "MISMATCH");
    }
  }
  if (!status.ok()) {
    std::printf("verify: FAILED — %s\n", status.error.c_str());
    return 1;
  }
  std::printf("verify: OK — %zu/%zu sections passed\n",
              report.sections.size(), report.sections.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, &args)) return 1;
  if (!args.verify.empty()) return VerifyMain(args.verify);

  Timer venue_timer;
  Venue venue = args.has_seed
                    ? synth::RandomVenue(args.seed)
                    : synth::MakeDataset(synth::DatasetFromName(args.preset),
                                         args.scale);
  std::printf("venue: %zu partitions, %zu doors (generated in %.1f ms)\n",
              venue.NumPartitions(), venue.NumDoors(),
              venue_timer.ElapsedMillis());

  Rng rng(args.has_seed ? args.seed ^ 0x0B7EC75 : 0x0B7EC75);
  std::vector<IndoorPoint> objects =
      synth::PlaceObjects(venue, args.objects, rng);

  engine::EngineOptions options;
  options.tree.min_degree = args.min_degree;
  if (args.keyword_tags > 0) {
    options.object_keywords.resize(objects.size());
    for (size_t i = 0; i < objects.size(); ++i) {
      options.object_keywords[i] = {"tag-" +
                                    std::to_string(i % args.keyword_tags)};
    }
  }

  Timer build_timer;
  const engine::VenueBundle bundle = engine::VenueBundle::Build(
      std::move(venue), std::move(objects), std::move(options));
  const double build_ms = build_timer.ElapsedMillis();
  std::printf("index built in %.1f ms (%s in memory, %zu objects%s)\n",
              build_ms, HumanBytes(bundle.IndexMemoryBytes()).c_str(),
              bundle.objects().NumObjects(),
              bundle.has_keywords() ? ", keyword index" : "");

  Timer save_timer;
  io::SnapshotWriteOptions write_options;
  write_options.version = args.format_version;
  const io::Status status = bundle.Save(args.out, write_options);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.error.c_str());
    return 1;
  }
  std::FILE* f = std::fopen(args.out.c_str(), "rb");
  long snapshot_bytes = 0;
  if (f != nullptr) {
    std::fseek(f, 0, SEEK_END);
    snapshot_bytes = std::ftell(f);
    std::fclose(f);
  }
  std::printf("snapshot written to %s in %.1f ms (%s, format v%u)\n",
              args.out.c_str(), save_timer.ElapsedMillis(),
              HumanBytes(static_cast<uint64_t>(snapshot_bytes)).c_str(),
              args.format_version);

  if (!args.registry.empty()) {
    // The registry resolves relative snapshot paths against the manifest's
    // directory (so a registry directory relocates wholesale): store the
    // path manifest-relative when the snapshot lives under that directory,
    // absolute otherwise.
    const io::Status upsert = engine::VenueRegistry::UpsertManifestEntry(
        args.registry, args.venue_id,
        engine::VenueRegistry::ManifestRelativePath(args.registry, args.out));
    if (!upsert.ok()) {
      std::fprintf(stderr, "error: %s\n", upsert.error.c_str());
      return 1;
    }
    std::printf("registered as '%s' in %s\n", args.venue_id.c_str(),
                args.registry.c_str());
  }
  return 0;
}
