// viptree_router: the front process of a sharded deployment. Clients speak
// the same binary wire protocol to the router as to a shard
// (`viptree_query --listen`); the router forwards each request to the
// owning shard by consistent (rendezvous) assignment, fails over to the
// next healthy shard when one dies, and answers health/stats probes with
// the fleet-wide aggregate.
//
// Example (2 shards + router, all on loopback):
//   viptree_query --registry fleet/registry.txt --listen 7401 &
//   viptree_query --registry fleet/registry.txt --listen 7402 &
//   viptree_router --shards 127.0.0.1:7401,127.0.0.1:7402
//       --manifest fleet/registry.txt --listen 7400 &
//   viptree_query --connect 127.0.0.1:7400 --input workload.txt
//
// SIGTERM/SIGINT drain gracefully: stop accepting, answer everything in
// flight, flush, exit with a forwarding summary.

#include <signal.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/venue_registry.h"
#include "net/router.h"

namespace {

using namespace viptree;

struct Args {
  std::vector<std::string> shards;
  std::string manifest;  // optional: venue ids for the assignment banner
  int listen_port = 0;   // 0 = ephemeral (the bound port is printed)
  net::RouterOptions options;
  bool print_assignments = false;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --shards HOST:PORT[,HOST:PORT...] [--manifest PATH]\n"
      "          [--listen PORT] [--pool N] [--probe-interval-ms D]\n"
      "          [--probe-miss-limit N] [--max-attempts N]\n"
      "          [--print-assignments]\n"
      "\n"
      "Routes wire-protocol requests across a fixed shard fleet by\n"
      "consistent venue assignment, with health probing and failover.\n"
      "--manifest names the registry manifest whose venue ids the\n"
      "assignment banner reports (routing itself hashes whatever venue a\n"
      "request carries, manifest or not).\n",
      argv0);
}

bool Parse(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0],
                     flag.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (flag == "--shards") {
      if ((v = value()) == nullptr) return false;
      std::string list = v;
      size_t start = 0;
      while (start <= list.size()) {
        const size_t comma = list.find(',', start);
        const std::string endpoint =
            list.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        if (!endpoint.empty()) args->shards.push_back(endpoint);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (flag == "--manifest") {
      if ((v = value()) == nullptr) return false;
      args->manifest = v;
    } else if (flag == "--listen") {
      if ((v = value()) == nullptr) return false;
      args->listen_port = std::atoi(v);
      if (args->listen_port < 0 || args->listen_port > 65535) {
        std::fprintf(stderr, "%s: --listen wants a port in [0, 65535]\n",
                     argv[0]);
        return false;
      }
    } else if (flag == "--pool") {
      if ((v = value()) == nullptr) return false;
      args->options.pool_size = static_cast<size_t>(std::atol(v));
    } else if (flag == "--probe-interval-ms") {
      if ((v = value()) == nullptr) return false;
      args->options.probe_interval_ms = std::atof(v);
    } else if (flag == "--probe-miss-limit") {
      if ((v = value()) == nullptr) return false;
      args->options.probe_miss_limit = static_cast<size_t>(std::atol(v));
    } else if (flag == "--max-attempts") {
      if ((v = value()) == nullptr) return false;
      args->options.max_attempts = static_cast<size_t>(std::atol(v));
    } else if (flag == "--print-assignments") {
      args->print_assignments = true;
    } else if (flag == "--help" || flag == "-h") {
      Usage(argv[0]);
      return false;
    } else {
      std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], flag.c_str());
      Usage(argv[0]);
      return false;
    }
  }
  if (args->shards.empty()) {
    std::fprintf(stderr, "%s: --shards is required\n", argv[0]);
    Usage(argv[0]);
    return false;
  }
  return true;
}

net::Router* g_router = nullptr;

void OnTerminateSignal(int) {
  // Async-signal-safe: atomic store + self-pipe write.
  if (g_router != nullptr) g_router->RequestDrain();
}

void InstallDrainSignalHandlers() {
  struct sigaction action{};
  action.sa_handler = OnTerminateSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, &args)) return 1;

  std::signal(SIGPIPE, SIG_IGN);

  std::vector<std::string> venue_ids;
  if (!args.manifest.empty()) {
    std::string error;
    std::optional<engine::VenueRegistry> registry =
        engine::VenueRegistry::Open(args.manifest, &error);
    if (!registry.has_value()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    venue_ids = registry->VenueIds();
  }

  args.options.port = static_cast<uint16_t>(args.listen_port);
  net::Router router(args.shards, venue_ids, args.options);
  if (io::Status status = router.Start(); !status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.error.c_str());
    return 1;
  }
  g_router = &router;
  InstallDrainSignalHandlers();

  std::printf("router listening on 127.0.0.1:%u over %zu shard(s)\n",
              router.port(), args.shards.size());
  if (args.print_assignments || !venue_ids.empty()) {
    for (const auto& [venue, shard] : router.Assignments()) {
      std::printf("  venue %-16s -> shard %zu (%s)\n", venue.c_str(), shard,
                  args.shards[shard].c_str());
    }
  }
  std::fflush(stdout);

  router.Wait();  // returns once a signal-triggered drain completes
  g_router = nullptr;

  const net::RouterCounters counters = router.counters();
  std::printf(
      "router drained: %llu forwarded, %llu returned, %llu failover(s), "
      "%llu rejection(s), %llu protocol error(s), %llu shard "
      "disconnect(s)\n",
      static_cast<unsigned long long>(counters.requests_forwarded),
      static_cast<unsigned long long>(counters.responses_returned),
      static_cast<unsigned long long>(counters.failovers),
      static_cast<unsigned long long>(counters.no_shard_rejections),
      static_cast<unsigned long long>(counters.protocol_errors),
      static_cast<unsigned long long>(counters.shard_disconnects));
  return 0;
}
