// viptree_query: load a snapshot written by viptree_build and serve queries
// against it — the "load anywhere" half of the build-once/load-anywhere
// workflow. Load failures (truncation, corruption, version skew) are
// reported with the decoder's message and a non-zero exit.
//
// Three modes:
//   * batch (default): generate a random workload and run it through
//     QueryEngine::RunBatch, printing the BatchStats;
//   * --serve: read queries one per line from stdin (or --input FILE) and
//     submit each through the async engine::Service front-end — resident
//     workers, multi-venue routing, optional per-request deadlines;
//   * --emit-workload: print the random workload in the --serve text
//     format instead of running it, so `viptree_query --emit-workload |
//     viptree_query --serve` pipes a reproducible request stream.
//
// Serve-mode line format (engine/workload_text.h is the single
// emitter/parser; blank lines and '#' comments ignored; the leading
// <venue> column exists only in --registry mode):
//
//   [<venue>] distance <p> <x> <y> <z>  <p> <x> <y> <z>
//   [<venue>] path     <p> <x> <y> <z>  <p> <x> <y> <z>
//   [<venue>] knn      <p> <x> <y> <z>  <k>
//   [<venue>] range    <p> <x> <y> <z>  <radius>
//   [<venue>] bknn     <p> <x> <y> <z>  <k> <kw1[,kw2,...] | ->
//   [<venue>] move     <id> <p> <x> <y> <z>       (live-object updates:
//   [<venue>] add      <p> <x> <y> <z> <kw...|->   each line publishes one
//   [<venue>] remove   <id>                        new object epoch)
//
// Examples:
//   viptree_query --snapshot mc.vipsnap --queries 1000 --threads 4
//   viptree_query --registry fleet/registry.txt --venue mc-hq --queries 500
//   viptree_query --registry fleet/registry.txt --list-venues
//   viptree_query --registry fleet/registry.txt --venue mc-hq
//       --queries 100 --updates 10 --emit-workload > w.txt
//   viptree_query --registry fleet/registry.txt --serve --threads 4
//       --deadline-ms 50 --input w.txt

#include <signal.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "core/distance_cache.h"
#include "engine/query_engine.h"
#include "engine/service.h"
#include "engine/venue_registry.h"
#include "engine/workload_text.h"
#include "net/client.h"
#include "net/shard_server.h"
#include "net/wire.h"
#include "synth/objects.h"

namespace {

using namespace viptree;
namespace eng = viptree::engine;

struct Args {
  std::string snapshot;
  std::string registry;  // manifest path (alternative to --snapshot)
  std::string venue;     // venue id within the registry
  bool list_venues = false;
  bool serve = false;
  bool emit_workload = false;
  int listen_port = -1;  // --listen PORT: shard-server mode (0 = ephemeral)
  std::string connect;   // --connect HOST:PORT: drive a remote shard/router
  std::string input;          // --serve source; empty = stdin
  double deadline_ms = 0.0;   // --serve per-request budget; 0 = none
  size_t queue_capacity = 1024;
  size_t queries = 500;
  size_t updates = 0;  // --emit-workload: update lines to interleave
  size_t threads = 1;
  uint64_t seed = 0xC0FFEE;
  std::string mix = "mixed";  // mixed | distance | path | knn | range
  // Cross-request distance cache (core/distance_cache.h). Off by default:
  // the cache only pays off on workloads that repeat door pairs.
  bool cache = false;
  CachePolicy cache_policy = CachePolicy::kLru;
  size_t cache_capacity = DistanceCacheOptions{}.capacity;
  // Execution-planner coalescing (engine/exec_plan.h). Off by default:
  // batch mode forwards it to RunBatch, serve mode to the Service workers.
  bool coalesce = false;
  size_t coalesce_window = eng::CoalesceOptions{}.window;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--snapshot PATH | --registry MANIFEST --venue ID)\n"
      "          [--queries N] [--threads T] [--seed S]\n"
      "          [--mix mixed|distance|path|knn|range]\n"
      "          [--cache] [--cache-policy lru|2q|s2q] [--cache-capacity N]\n"
      "          [--coalesce] [--coalesce-window K]\n"
      "          [--emit-workload [--updates U]]\n"
      "       %s (--snapshot PATH | --registry MANIFEST) --serve\n"
      "          [--input FILE] [--threads T] [--deadline-ms D]\n"
      "          [--queue-capacity C] [--cache] [--cache-policy P]\n"
      "          [--cache-capacity N] [--coalesce] [--coalesce-window K]\n"
      "       %s (--snapshot PATH | --registry MANIFEST) --listen PORT\n"
      "          [--threads T] [--queue-capacity C] [--cache] [--coalesce]\n"
      "       %s --connect HOST:PORT [--input FILE] [--deadline-ms D]\n"
      "       %s --registry MANIFEST --list-venues\n"
      "\n"
      "--listen runs this process as a network shard: the same Service as\n"
      "--serve behind the binary wire protocol (SIGTERM/SIGINT drain it\n"
      "gracefully and print the final stats). --connect reads the same\n"
      "workload lines but sends them to a remote shard or router instead\n"
      "of an in-process Service.\n"
      "\n"
      "Loads a VIP-Tree snapshot — directly, or by venue id through a\n"
      "multi-venue registry manifest (zero-copy mmap for v2 snapshots) —\n"
      "and runs a random query batch against it; --serve instead reads\n"
      "requests line-by-line (queries plus move/add/remove live-object\n"
      "update lines) and submits them through the async engine::Service\n"
      "front-end (--emit-workload prints the random workload in that\n"
      "line format; --updates U interleaves U update lines). The mixed\n"
      "workload is 40%% distance, 20%% path, 20%% kNN, 10%% range and\n"
      "10%% boolean keyword kNN (keyword queries fall back to kNN when\n"
      "the snapshot has no keyword index). --cache turns on the exact\n"
      "cross-request door-pair distance cache (results are bit-identical\n"
      "with and without it); --cache-policy picks the eviction policy;\n"
      "--cache-capacity 0 (default) sizes the cache from the venue's\n"
      "door count. --coalesce turns on the execution planner: workers\n"
      "pull up to --coalesce-window K (default %zu) queued same-venue\n"
      "queries into one group and share their source ascents through the\n"
      "multi-target kernels — results stay bit-identical to sequential\n"
      "execution.\n",
      argv0, argv0, argv0, argv0, argv0, eng::CoalesceOptions{}.window);
}

bool Parse(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0],
                     flag.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (flag == "--snapshot") {
      if ((v = value()) == nullptr) return false;
      args->snapshot = v;
    } else if (flag == "--registry") {
      if ((v = value()) == nullptr) return false;
      args->registry = v;
    } else if (flag == "--venue") {
      if ((v = value()) == nullptr) return false;
      args->venue = v;
    } else if (flag == "--list-venues") {
      args->list_venues = true;
    } else if (flag == "--serve") {
      args->serve = true;
    } else if (flag == "--emit-workload") {
      args->emit_workload = true;
    } else if (flag == "--listen") {
      if ((v = value()) == nullptr) return false;
      args->listen_port = std::atoi(v);
      if (args->listen_port < 0 || args->listen_port > 65535) {
        std::fprintf(stderr, "%s: --listen wants a port in [0, 65535]\n",
                     argv[0]);
        return false;
      }
    } else if (flag == "--connect") {
      if ((v = value()) == nullptr) return false;
      args->connect = v;
    } else if (flag == "--input") {
      if ((v = value()) == nullptr) return false;
      args->input = v;
    } else if (flag == "--deadline-ms") {
      if ((v = value()) == nullptr) return false;
      args->deadline_ms = std::atof(v);
    } else if (flag == "--queue-capacity") {
      if ((v = value()) == nullptr) return false;
      args->queue_capacity = static_cast<size_t>(std::atol(v));
    } else if (flag == "--queries") {
      if ((v = value()) == nullptr) return false;
      args->queries = static_cast<size_t>(std::atol(v));
    } else if (flag == "--updates") {
      if ((v = value()) == nullptr) return false;
      args->updates = static_cast<size_t>(std::atol(v));
    } else if (flag == "--threads") {
      if ((v = value()) == nullptr) return false;
      args->threads = static_cast<size_t>(std::atol(v));
    } else if (flag == "--seed") {
      if ((v = value()) == nullptr) return false;
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--mix") {
      if ((v = value()) == nullptr) return false;
      args->mix = v;
    } else if (flag == "--cache") {
      args->cache = true;
    } else if (flag == "--cache-policy") {
      if ((v = value()) == nullptr) return false;
      if (!ParseCachePolicy(v, &args->cache_policy)) {
        std::fprintf(stderr, "%s: unknown --cache-policy '%s' "
                     "(expected lru, 2q or s2q)\n", argv[0], v);
        return false;
      }
      args->cache = true;  // naming a policy implies --cache
    } else if (flag == "--cache-capacity") {
      if ((v = value()) == nullptr) return false;
      args->cache_capacity = static_cast<size_t>(std::atol(v));
      args->cache = true;
    } else if (flag == "--coalesce") {
      args->coalesce = true;
    } else if (flag == "--coalesce-window") {
      if ((v = value()) == nullptr) return false;
      args->coalesce_window = static_cast<size_t>(std::atol(v));
      args->coalesce = true;  // naming a window implies --coalesce
    } else if (flag == "--help" || flag == "-h") {
      Usage(argv[0]);
      return false;
    } else {
      std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], flag.c_str());
      Usage(argv[0]);
      return false;
    }
  }
  if (args->list_venues) {
    if (args->registry.empty()) {
      std::fprintf(stderr, "%s: --list-venues needs --registry\n", argv[0]);
      return false;
    }
    return true;
  }
  const int modes = (args->serve ? 1 : 0) + (args->emit_workload ? 1 : 0) +
                    (args->listen_port >= 0 ? 1 : 0) +
                    (!args->connect.empty() ? 1 : 0);
  if (modes > 1) {
    std::fprintf(stderr,
                 "%s: --serve, --emit-workload, --listen and --connect are "
                 "mutually exclusive\n",
                 argv[0]);
    return false;
  }
  if (!args->connect.empty()) {
    // Connect mode drives a *remote* server: no local snapshot needed.
    if (!args->snapshot.empty() || !args->registry.empty()) {
      std::fprintf(stderr,
                   "%s: --connect takes no --snapshot/--registry (the "
                   "server owns the data)\n",
                   argv[0]);
      return false;
    }
    return true;
  }
  if (args->snapshot.empty() == args->registry.empty()) {
    std::fprintf(stderr,
                 "%s: pass exactly one of --snapshot / --registry\n",
                 argv[0]);
    Usage(argv[0]);
    return false;
  }
  // --serve and --listen route per request, so they do not need --venue;
  // the batch and emit-workload modes generate a per-venue workload and do.
  if (!args->serve && args->listen_port < 0 && !args->registry.empty() &&
      args->venue.empty()) {
    std::fprintf(stderr, "%s: --registry needs --venue (or --list-venues)\n",
                 argv[0]);
    return false;
  }
  if (args->serve && args->emit_workload) {
    std::fprintf(stderr, "%s: --serve and --emit-workload are exclusive\n",
                 argv[0]);
    return false;
  }
  if (args->updates > 0 && !args->emit_workload) {
    std::fprintf(stderr, "%s: --updates only applies to --emit-workload\n",
                 argv[0]);
    return false;
  }
  if (args->mix != "mixed" && args->mix != "distance" && args->mix != "path" &&
      args->mix != "knn" && args->mix != "range") {
    std::fprintf(stderr, "%s: unknown --mix '%s'\n", argv[0],
                 args->mix.c_str());
    return false;
  }
  return true;
}

DistanceCacheOptions CacheOptionsFrom(const Args& args) {
  DistanceCacheOptions options;
  options.enabled = args.cache;
  options.policy = args.cache_policy;
  options.capacity = args.cache_capacity;
  return options;
}

eng::CoalesceOptions CoalesceOptionsFrom(const Args& args) {
  eng::CoalesceOptions options;
  options.enabled = args.coalesce;
  options.window = args.coalesce_window;
  return options;
}

// ---------------------------------------------------------------------------
// Signal handling (the --serve / --listen lifecycles). SIGINT/SIGTERM ask
// for a graceful drain: the serve loop stops reading and drains the
// Service; the shard server runs its two-phase drain. Handlers are
// installed without SA_RESTART so a blocked stdin read returns EINTR and
// the serve loop gets to notice the flag. SIGPIPE is ignored process-wide:
// a peer hanging up mid-write is a per-connection condition (EPIPE), not a
// process killer.
// ---------------------------------------------------------------------------

std::atomic<bool> g_interrupted{false};
net::ShardServer* g_shard = nullptr;  // set only in --listen mode

void OnTerminateSignal(int) {
  g_interrupted.store(true, std::memory_order_release);
  // RequestDrain is async-signal-safe (atomic store + pipe write).
  if (g_shard != nullptr) g_shard->RequestDrain();
}

void InstallDrainSignalHandlers() {
  struct sigaction action{};
  action.sa_handler = OnTerminateSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: let blocked reads return EINTR
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

void PrintPlanStats(const eng::PlanStats& plan) {
  std::printf("  coalesce      %10llu groups, %llu queries grouped, "
              "%llu ascents computed, %llu reused\n",
              static_cast<unsigned long long>(plan.groups),
              static_cast<unsigned long long>(plan.coalesced_queries),
              static_cast<unsigned long long>(plan.ascents_computed),
              static_cast<unsigned long long>(plan.ascents_reused));
  std::printf("  group sizes  ");
  for (size_t b = 1; b < eng::PlanStats::kHistogramBuckets; ++b) {
    const size_t lo = size_t{1} << b;
    if (b + 1 < eng::PlanStats::kHistogramBuckets) {
      std::printf(" [%zu,%zu):%llu", lo, lo * 2,
                  static_cast<unsigned long long>(plan.groups_by_size[b]));
    } else {
      std::printf(" [%zu,inf):%llu", lo,
                  static_cast<unsigned long long>(plan.groups_by_size[b]));
    }
  }
  std::printf("\n");
}

void PrintCacheStats(const CacheCounters& cache, CachePolicy policy) {
  std::printf("  cache (%s)    %llu hits, %llu misses (%.1f%% hit rate), "
              "%llu evictions\n",
              CachePolicyName(policy),
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              100.0 * cache.hit_rate(),
              static_cast<unsigned long long>(cache.evictions));
}

std::vector<eng::Query> MakeWorkload(const eng::QueryEngine& engine,
                                     const Args& args) {
  const Venue& venue = engine.venue();
  Rng rng(args.seed);
  std::vector<eng::Query> queries;
  queries.reserve(args.queries);
  for (size_t i = 0; i < args.queries; ++i) {
    const IndoorPoint a = synth::RandomIndoorPoint(venue, rng);
    const IndoorPoint b = synth::RandomIndoorPoint(venue, rng);
    if (args.mix == "distance") {
      queries.push_back(eng::Query::Distance(a, b));
    } else if (args.mix == "path") {
      queries.push_back(eng::Query::Path(a, b));
    } else if (args.mix == "knn") {
      queries.push_back(eng::Query::Knn(a, 5));
    } else if (args.mix == "range") {
      queries.push_back(eng::Query::Range(a, 100.0));
    } else {
      switch (i % 10) {
        case 0: case 1: case 2: case 3:
          queries.push_back(eng::Query::Distance(a, b));
          break;
        case 4: case 5:
          queries.push_back(eng::Query::Path(a, b));
          break;
        case 6: case 7:
          queries.push_back(eng::Query::Knn(a, 5));
          break;
        case 8:
          queries.push_back(eng::Query::Range(a, 100.0));
          break;
        default:
          if (engine.has_keywords()) {
            queries.push_back(eng::Query::BooleanKnn(a, 3, {"tag-0"}));
          } else {
            queries.push_back(eng::Query::Knn(a, 3));
          }
          break;
      }
    }
  }
  return queries;
}

// ---------------------------------------------------------------------------
// Serve-mode text protocol (shared emitter/parser: engine/workload_text.h).
// ---------------------------------------------------------------------------

// The emitted request stream: `queries` in order, with `args.updates`
// live-object update lines interleaved at an even stride. Updates are
// moves of existing object ids (and, on keyword venues, adds) only:
// with >1 serve worker, updates to one venue may execute out of
// submission order, and moves/adds stay valid under any reordering —
// removes would invalidate later moves of the same id.
std::vector<eng::Request> MakeRequests(const eng::QueryEngine& engine,
                                       const Args& args,
                                       const std::string& venue) {
  const std::vector<eng::Query> queries = MakeWorkload(engine, args);
  Rng rng(args.seed ^ 0x0BDE17A);
  const size_t num_objects = engine.objects().NumObjects();
  std::vector<eng::Request> requests;
  requests.reserve(queries.size() + args.updates);
  const size_t stride =
      args.updates == 0 ? queries.size() + 1
                        : std::max<size_t>(1, queries.size() / args.updates);
  size_t emitted_updates = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    eng::Request request;
    request.venue_id = venue;
    request.query = queries[i];
    requests.push_back(std::move(request));
    if (emitted_updates < args.updates && (i + 1) % stride == 0) {
      ObjectDelta delta;
      if (num_objects > 0 && (!engine.has_keywords() || !rng.Chance(0.3))) {
        delta.moves.push_back(
            {static_cast<ObjectId>(rng.UniformIndex(num_objects)),
             synth::RandomIndoorPoint(engine.venue(), rng)});
      } else {
        ObjectDelta::Add add;
        add.at = synth::RandomIndoorPoint(engine.venue(), rng);
        if (engine.has_keywords()) add.keywords = {"tag-0"};
        delta.adds.push_back(std::move(add));
      }
      requests.push_back(eng::Request::Update(venue, std::move(delta)));
      ++emitted_updates;
    }
  }
  // A short query list can leave stride budget unused; top up at the end.
  for (; emitted_updates < args.updates && num_objects > 0;
       ++emitted_updates) {
    ObjectDelta delta;
    delta.moves.push_back(
        {static_cast<ObjectId>(rng.UniformIndex(num_objects)),
         synth::RandomIndoorPoint(engine.venue(), rng)});
    requests.push_back(eng::Request::Update(venue, std::move(delta)));
  }
  return requests;
}

// The --serve loop: submit every line through the service, drain, report.
int ServeMain(const Args& args, std::optional<eng::VenueRegistry> registry) {
  eng::ServiceOptions options;
  options.num_threads = args.threads;
  options.queue_capacity = args.queue_capacity;
  options.cache = CacheOptionsFrom(args);
  options.coalesce = CoalesceOptionsFrom(args);

  std::unique_ptr<eng::Service> service;
  const bool with_venue = registry.has_value();
  std::string error;
  if (with_venue) {
    service =
        std::make_unique<eng::Service>(std::move(*registry), options);
  } else {
    std::optional<eng::VenueBundle> bundle =
        eng::VenueBundle::TryLoad(args.snapshot, &error);
    if (!bundle.has_value()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    service = std::make_unique<eng::Service>(
        std::make_shared<const eng::VenueBundle>(std::move(*bundle)),
        options);
  }
  service->Start();

  std::ifstream file;
  if (!args.input.empty()) {
    file.open(args.input);
    if (!file) {
      std::fprintf(stderr, "error: cannot open workload file '%s'\n",
                   args.input.c_str());
      return 1;
    }
  }
  std::istream& in = args.input.empty() ? std::cin : file;

  // SIGINT/SIGTERM stop reading input; the drain below still runs, so
  // every request already submitted is answered and the summary prints.
  InstallDrainSignalHandlers();

  const Timer wall;
  size_t submitted = 0;
  size_t malformed = 0;
  size_t line_number = 0;
  // Backpressure: cap requests outstanding (queued + in-flight) below the
  // service's queue capacity by waiting on the oldest ticket before
  // submitting past the window — a fast producer blocks here instead of
  // overflowing the bounded queue into rejections.
  std::deque<eng::Ticket> window;
  const size_t max_outstanding = std::max<size_t>(1, args.queue_capacity);
  std::string line;
  while (!g_interrupted.load(std::memory_order_acquire) &&
         std::getline(in, line)) {
    ++line_number;
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    eng::Request request;
    if (!eng::workload::ParseLine(line, with_venue, &request, &error)) {
      std::fprintf(stderr, "warning: skipping line %zu: %s\n", line_number,
                   error.c_str());
      ++malformed;
      continue;
    }
    request.tag = submitted;
    if (args.deadline_ms > 0.0) {
      request.deadline = eng::DeadlineAfterMillis(args.deadline_ms);
    }
    if (window.size() >= max_outstanding) {
      window.front().Wait();
      window.pop_front();
    }
    window.push_back(service->Submit(std::move(request)));
    ++submitted;
  }
  if (g_interrupted.load(std::memory_order_acquire)) {
    std::fprintf(stderr,
                 "signal received: draining %zu submitted request(s)\n",
                 submitted);
  }
  service->Drain();
  const double wall_ms = wall.ElapsedMillis();

  const eng::ServiceStats stats = service->Stats();
  std::printf(
      "served %zu requests (%llu ok, %llu updates, %llu expired, "
      "%llu rejected, %llu failed) in %.2f ms on %zu worker(s)\n",
      submitted, static_cast<unsigned long long>(stats.num_queries),
      static_cast<unsigned long long>(stats.updates),
      static_cast<unsigned long long>(stats.expired),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.failed), wall_ms,
      stats.num_threads);
  if (wall_ms > 0.0) {
    std::printf("  throughput    %10.0f queries/s\n",
                submitted / (wall_ms / 1000.0));
  }
  std::printf("  queue p50     %10.2f us\n", stats.queue_micros.p50);
  std::printf("  queue p99     %10.2f us\n", stats.queue_micros.p99);
  std::printf("  latency p50   %10.2f us\n", stats.latency_micros.p50);
  std::printf("  latency p99   %10.2f us\n", stats.latency_micros.p99);
  if (stats.updates > 0) {
    std::printf("  update p99    %10.2f us\n", stats.update_micros.p99);
  }
  if (args.cache) PrintCacheStats(stats.cache, args.cache_policy);
  if (args.coalesce) PrintPlanStats(stats.plan);
  for (const auto& [venue_id, counters] : stats.per_venue) {
    std::printf("  venue %-12s %llu ok, %llu updates, %llu expired, "
                "%llu failed\n",
                venue_id.empty() ? "(default)" : venue_id.c_str(),
                static_cast<unsigned long long>(counters.completed),
                static_cast<unsigned long long>(counters.updated),
                static_cast<unsigned long long>(counters.expired),
                static_cast<unsigned long long>(counters.failed));
  }
  service->Stop();
  // Exit status mirrors request outcomes so scripts can gate on it:
  // malformed input, venue failures and queue rejections are errors;
  // deadline expiry is the shedding the caller asked for and is not.
  if (malformed > 0) {
    std::fprintf(stderr, "error: %zu malformed workload line(s)\n",
                 malformed);
    return 1;
  }
  if (stats.failed > 0 || stats.rejected > 0) {
    std::fprintf(stderr,
                 "error: %llu request(s) failed, %llu rejected\n",
                 static_cast<unsigned long long>(stats.failed),
                 static_cast<unsigned long long>(stats.rejected));
    return 1;
  }
  return 0;
}

// The --listen loop: run this process as a network shard until a
// SIGTERM/SIGINT drains it, then report the final service stats.
int ListenMain(const Args& args, std::optional<eng::VenueRegistry> registry) {
  net::ShardServerOptions options;
  options.port = static_cast<uint16_t>(args.listen_port);
  options.service.num_threads = args.threads;
  options.service.queue_capacity = args.queue_capacity;
  options.service.cache = CacheOptionsFrom(args);
  options.service.coalesce = CoalesceOptionsFrom(args);

  std::unique_ptr<net::ShardServer> server;
  std::string error;
  if (registry.has_value()) {
    server = std::make_unique<net::ShardServer>(std::move(*registry),
                                                std::move(options));
  } else {
    std::optional<eng::VenueBundle> bundle =
        eng::VenueBundle::TryLoad(args.snapshot, &error);
    if (!bundle.has_value()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    server = std::make_unique<net::ShardServer>(
        std::make_shared<const eng::VenueBundle>(std::move(*bundle)),
        std::move(options));
  }
  if (io::Status status = server->Start(); !status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.error.c_str());
    return 1;
  }
  g_shard = server.get();
  InstallDrainSignalHandlers();
  // The port line is machine-read by scripts launching ephemeral shards.
  std::printf("shard listening on 127.0.0.1:%u (%zu worker(s))\n",
              server->port(), args.threads);
  std::fflush(stdout);

  server->Wait();  // returns once a signal-triggered drain completes
  g_shard = nullptr;

  const eng::ServiceStats stats = server->ServiceStatsNow();
  std::printf(
      "shard drained: %llu ok, %llu updates, %llu expired, %llu rejected, "
      "%llu failed over %llu connection(s), %llu frame(s), "
      "%llu protocol error(s)\n",
      static_cast<unsigned long long>(stats.num_queries),
      static_cast<unsigned long long>(stats.updates),
      static_cast<unsigned long long>(stats.expired),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.failed),
      static_cast<unsigned long long>(server->connections_accepted()),
      static_cast<unsigned long long>(server->frames_received()),
      static_cast<unsigned long long>(server->protocol_errors()));
  std::printf("  latency p50   %10.2f us\n", stats.latency_micros.p50);
  std::printf("  latency p99   %10.2f us\n", stats.latency_micros.p99);
  return 0;
}

// Workload lines arrive in the registry (venue-column) or single-snapshot
// (bare) format; a remote driver accepts either. The venue column is tried
// first — its first token is a venue id, never a parsable operation — so
// the two formats cannot be confused.
bool ParseLineAnyFormat(const std::string& line, eng::Request* request,
                        std::string* error) {
  if (eng::workload::ParseLine(line, /*with_venue=*/true, request, error)) {
    return true;
  }
  std::string bare_error;
  if (eng::workload::ParseLine(line, /*with_venue=*/false, request,
                               &bare_error)) {
    error->clear();
    return true;
  }
  return false;  // report the venue-format error (the likelier intent)
}

// The --connect loop: same workload lines as --serve, but submitted to a
// remote shard or router through net::Client with a pipelined window.
int ConnectMain(const Args& args) {
  std::string error;
  std::unique_ptr<net::Client> client = net::Client::Connect(
      args.connect, &error);
  if (client == nullptr) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  std::ifstream file;
  if (!args.input.empty()) {
    file.open(args.input);
    if (!file) {
      std::fprintf(stderr, "error: cannot open workload file '%s'\n",
                   args.input.c_str());
      return 1;
    }
  }
  std::istream& in = args.input.empty() ? std::cin : file;

  const Timer wall;
  size_t submitted = 0;
  size_t malformed = 0;
  size_t line_number = 0;
  size_t outstanding = 0;
  uint64_t ok = 0, updates = 0, expired = 0, rejected = 0, failed = 0;
  // Pipelining window: enough to keep the wire and the remote queue busy,
  // small enough never to overflow a default-capacity shard queue.
  const size_t window =
      std::max<size_t>(1, std::min<size_t>(args.queue_capacity, 128));

  auto receive_one = [&]() -> bool {
    net::WireResponse response;
    uint64_t tag = 0;
    if (io::Status status = client->Receive(&response, &tag, 30000.0);
        !status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.error.c_str());
      return false;
    }
    --outstanding;
    switch (response.status) {
      case eng::RequestStatus::kOk:
        if (response.kind == eng::RequestKind::kUpdateObjects) {
          ++updates;
        } else {
          ++ok;
        }
        break;
      case eng::RequestStatus::kDeadlineExceeded:
        ++expired;
        break;
      case eng::RequestStatus::kRejected:
        ++rejected;
        break;
      default:
        ++failed;
        break;
    }
    return true;
  };

  std::string line;
  while (std::getline(in, line)) {
    ++line_number;
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    eng::Request request;
    if (!ParseLineAnyFormat(line, &request, &error)) {
      std::fprintf(stderr, "warning: skipping line %zu: %s\n", line_number,
                   error.c_str());
      ++malformed;
      continue;
    }
    const net::WireRequest wire =
        net::WireRequest::FromRequest(request, args.deadline_ms);
    while (outstanding >= window) {
      if (!receive_one()) return 1;
    }
    ++submitted;
    if (io::Status status = client->Send(wire, submitted); !status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.error.c_str());
      return 1;
    }
    ++outstanding;
  }
  while (outstanding > 0) {
    if (!receive_one()) return 1;
  }
  const double wall_ms = wall.ElapsedMillis();

  std::printf(
      "sent %zu requests to %s (%llu ok, %llu updates, %llu expired, "
      "%llu rejected, %llu failed) in %.2f ms\n",
      submitted, args.connect.c_str(), static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(updates),
      static_cast<unsigned long long>(expired),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(failed), wall_ms);
  if (wall_ms > 0.0 && submitted > 0) {
    std::printf("  throughput    %10.0f requests/s\n",
                submitted / (wall_ms / 1000.0));
  }
  net::WireStats stats;
  if (client->Stats(&stats).ok()) {
    std::printf("  server latency p50 %.2f us, p99 %.2f us "
                "(%llu submitted fleet-wide)\n",
                stats.latency_p50, stats.latency_p99,
                static_cast<unsigned long long>(stats.submitted));
  }
  if (malformed > 0) {
    std::fprintf(stderr, "error: %zu malformed workload line(s)\n",
                 malformed);
    return 1;
  }
  if (failed > 0 || rejected > 0) {
    std::fprintf(stderr, "error: %llu request(s) failed, %llu rejected\n",
                 static_cast<unsigned long long>(failed),
                 static_cast<unsigned long long>(rejected));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, &args)) return 1;

  // A peer (or downstream pipe) hanging up mid-write is EPIPE on that
  // descriptor, not a reason to kill the process.
  std::signal(SIGPIPE, SIG_IGN);

  if (!args.connect.empty()) return ConnectMain(args);

  std::string error;
  std::optional<eng::VenueRegistry> registry;
  if (!args.registry.empty()) {
    registry = eng::VenueRegistry::Open(args.registry, &error);
    if (!registry.has_value()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    if (args.list_venues) {
      std::printf("%zu venue(s) in %s:\n", registry->NumVenues(),
                  args.registry.c_str());
      for (const std::string& id : registry->VenueIds()) {
        std::printf("  %s\n", id.c_str());
      }
      return 0;
    }
  }

  if (args.listen_port >= 0) return ListenMain(args, std::move(registry));
  if (args.serve) return ServeMain(args, std::move(registry));

  Timer load_timer;
  std::unique_ptr<eng::QueryEngine> engine;
  bool zero_copy = false;
  if (registry.has_value()) {
    const std::shared_ptr<const eng::VenueBundle> bundle =
        registry->Acquire(args.venue, &error);
    if (bundle == nullptr) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    zero_copy = bundle->zero_copy();
    engine = std::make_unique<eng::QueryEngine>(bundle);
  } else {
    engine = eng::QueryEngine::TryLoad(args.snapshot, &error);
    if (engine == nullptr) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    zero_copy = engine->bundle().zero_copy();
  }
  if (args.cache) engine->EnableDistanceCache(CacheOptionsFrom(args));

  if (args.emit_workload) {
    // Registry-mode lines carry the venue column --serve expects.
    const std::string venue_column =
        registry.has_value() ? args.venue : std::string();
    for (const eng::Request& request :
         MakeRequests(*engine, args, venue_column)) {
      std::printf("%s\n", eng::workload::EmitLine(request).c_str());
    }
    return 0;
  }

  std::printf(
      "snapshot loaded in %.1f ms (%s): %zu partitions, %zu doors, "
      "%zu objects, %s index%s\n",
      load_timer.ElapsedMillis(), zero_copy ? "zero-copy mmap" : "copied",
      engine->venue().NumPartitions(), engine->venue().NumDoors(),
      engine->objects().NumObjects(),
      HumanBytes(engine->IndexMemoryBytes()).c_str(),
      engine->has_keywords() ? " (with keywords)" : "");

  const std::vector<eng::Query> queries = MakeWorkload(*engine, args);
  eng::BatchOptions batch;
  batch.num_threads = args.threads;
  batch.coalesce = CoalesceOptionsFrom(args);
  const eng::BatchResult run = engine->RunBatch(queries, batch);

  const eng::BatchStats& stats = run.stats;
  std::printf("batch: %zu %s queries on %zu thread(s)\n", stats.num_queries,
              args.mix.c_str(), stats.num_threads);
  std::printf("  wall          %10.2f ms\n", stats.wall_millis);
  std::printf("  throughput    %10.0f queries/s\n",
              stats.queries_per_second);
  std::printf("  latency p50   %10.2f us\n", stats.latency_micros.p50);
  std::printf("  latency p95   %10.2f us\n", stats.latency_micros.p95);
  std::printf("  latency p99   %10.2f us\n", stats.latency_micros.p99);
  std::printf("  latency max   %10.2f us\n", stats.latency_micros.max);
  std::printf("  visited nodes %10llu\n",
              static_cast<unsigned long long>(stats.visited_nodes));
  if (args.coalesce) PrintPlanStats(stats.plan);
  if (args.cache) {
    PrintCacheStats(engine->distance_cache()->Counters(), args.cache_policy);
  }
  return 0;
}
