// viptree_query: load a snapshot written by viptree_build and serve a batch
// of randomly generated queries against it, printing the BatchStats the
// engine collects — the "load anywhere" half of the build-once/load-
// anywhere workflow. Load failures (truncation, corruption, version skew)
// are reported with the decoder's message and a non-zero exit.
//
// Examples:
//   viptree_query --snapshot mc.vipsnap --queries 1000 --threads 4
//   viptree_query --registry fleet/registry.txt --venue mc-hq --queries 500
//   viptree_query --registry fleet/registry.txt --list-venues

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "engine/query_engine.h"
#include "engine/venue_registry.h"
#include "synth/objects.h"

namespace {

using namespace viptree;
namespace eng = viptree::engine;

struct Args {
  std::string snapshot;
  std::string registry;  // manifest path (alternative to --snapshot)
  std::string venue;     // venue id within the registry
  bool list_venues = false;
  size_t queries = 500;
  size_t threads = 1;
  uint64_t seed = 0xC0FFEE;
  std::string mix = "mixed";  // mixed | distance | path | knn | range
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--snapshot PATH | --registry MANIFEST --venue ID)\n"
      "          [--queries N] [--threads T] [--seed S]\n"
      "          [--mix mixed|distance|path|knn|range]\n"
      "       %s --registry MANIFEST --list-venues\n"
      "\n"
      "Loads a VIP-Tree snapshot — directly, or by venue id through a\n"
      "multi-venue registry manifest (zero-copy mmap for v2 snapshots) —\n"
      "and runs a random query batch against it.\n"
      "The mixed workload is 40%% distance, 20%% path, 20%% kNN, 10%%\n"
      "range and 10%% boolean keyword kNN (keyword queries fall back to\n"
      "kNN when the snapshot has no keyword index).\n",
      argv0, argv0);
}

bool Parse(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0],
                     flag.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (flag == "--snapshot") {
      if ((v = value()) == nullptr) return false;
      args->snapshot = v;
    } else if (flag == "--registry") {
      if ((v = value()) == nullptr) return false;
      args->registry = v;
    } else if (flag == "--venue") {
      if ((v = value()) == nullptr) return false;
      args->venue = v;
    } else if (flag == "--list-venues") {
      args->list_venues = true;
    } else if (flag == "--queries") {
      if ((v = value()) == nullptr) return false;
      args->queries = static_cast<size_t>(std::atol(v));
    } else if (flag == "--threads") {
      if ((v = value()) == nullptr) return false;
      args->threads = static_cast<size_t>(std::atol(v));
    } else if (flag == "--seed") {
      if ((v = value()) == nullptr) return false;
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--mix") {
      if ((v = value()) == nullptr) return false;
      args->mix = v;
    } else if (flag == "--help" || flag == "-h") {
      Usage(argv[0]);
      return false;
    } else {
      std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], flag.c_str());
      Usage(argv[0]);
      return false;
    }
  }
  if (args->list_venues) {
    if (args->registry.empty()) {
      std::fprintf(stderr, "%s: --list-venues needs --registry\n", argv[0]);
      return false;
    }
  } else if (args->snapshot.empty() == args->registry.empty()) {
    std::fprintf(stderr,
                 "%s: pass exactly one of --snapshot / --registry\n",
                 argv[0]);
    Usage(argv[0]);
    return false;
  } else if (!args->registry.empty() && args->venue.empty()) {
    std::fprintf(stderr, "%s: --registry needs --venue (or --list-venues)\n",
                 argv[0]);
    return false;
  }
  if (args->mix != "mixed" && args->mix != "distance" && args->mix != "path" &&
      args->mix != "knn" && args->mix != "range") {
    std::fprintf(stderr, "%s: unknown --mix '%s'\n", argv[0],
                 args->mix.c_str());
    return false;
  }
  return true;
}

std::vector<eng::Query> MakeWorkload(const eng::QueryEngine& engine,
                                     const Args& args) {
  const Venue& venue = engine.venue();
  Rng rng(args.seed);
  std::vector<eng::Query> queries;
  queries.reserve(args.queries);
  for (size_t i = 0; i < args.queries; ++i) {
    const IndoorPoint a = synth::RandomIndoorPoint(venue, rng);
    const IndoorPoint b = synth::RandomIndoorPoint(venue, rng);
    if (args.mix == "distance") {
      queries.push_back(eng::Query::Distance(a, b));
    } else if (args.mix == "path") {
      queries.push_back(eng::Query::Path(a, b));
    } else if (args.mix == "knn") {
      queries.push_back(eng::Query::Knn(a, 5));
    } else if (args.mix == "range") {
      queries.push_back(eng::Query::Range(a, 100.0));
    } else {
      switch (i % 10) {
        case 0: case 1: case 2: case 3:
          queries.push_back(eng::Query::Distance(a, b));
          break;
        case 4: case 5:
          queries.push_back(eng::Query::Path(a, b));
          break;
        case 6: case 7:
          queries.push_back(eng::Query::Knn(a, 5));
          break;
        case 8:
          queries.push_back(eng::Query::Range(a, 100.0));
          break;
        default:
          if (engine.has_keywords()) {
            queries.push_back(eng::Query::BooleanKnn(a, 3, {"tag-0"}));
          } else {
            queries.push_back(eng::Query::Knn(a, 3));
          }
          break;
      }
    }
  }
  return queries;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, &args)) return 1;

  std::string error;
  std::optional<eng::VenueRegistry> registry;
  if (!args.registry.empty()) {
    registry = eng::VenueRegistry::Open(args.registry, &error);
    if (!registry.has_value()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    if (args.list_venues) {
      std::printf("%zu venue(s) in %s:\n", registry->NumVenues(),
                  args.registry.c_str());
      for (const std::string& id : registry->VenueIds()) {
        std::printf("  %s\n", id.c_str());
      }
      return 0;
    }
  }

  Timer load_timer;
  std::unique_ptr<eng::QueryEngine> engine;
  bool zero_copy = false;
  if (registry.has_value()) {
    const std::shared_ptr<const eng::VenueBundle> bundle =
        registry->Acquire(args.venue, &error);
    if (bundle == nullptr) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    zero_copy = bundle->zero_copy();
    engine = std::make_unique<eng::QueryEngine>(bundle);
  } else {
    engine = eng::QueryEngine::TryLoad(args.snapshot, &error);
    if (engine == nullptr) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    zero_copy = engine->bundle().zero_copy();
  }
  std::printf(
      "snapshot loaded in %.1f ms (%s): %zu partitions, %zu doors, "
      "%zu objects, %s index%s\n",
      load_timer.ElapsedMillis(), zero_copy ? "zero-copy mmap" : "copied",
      engine->venue().NumPartitions(), engine->venue().NumDoors(),
      engine->objects().NumObjects(),
      HumanBytes(engine->IndexMemoryBytes()).c_str(),
      engine->has_keywords() ? " (with keywords)" : "");

  const std::vector<eng::Query> queries = MakeWorkload(*engine, args);
  eng::BatchOptions batch;
  batch.num_threads = args.threads;
  const eng::BatchResult run = engine->RunBatch(queries, batch);

  const eng::BatchStats& stats = run.stats;
  std::printf("batch: %zu %s queries on %zu thread(s)\n", stats.num_queries,
              args.mix.c_str(), stats.num_threads);
  std::printf("  wall          %10.2f ms\n", stats.wall_millis);
  std::printf("  throughput    %10.0f queries/s\n",
              stats.queries_per_second);
  std::printf("  latency p50   %10.2f us\n", stats.latency_micros.p50);
  std::printf("  latency p95   %10.2f us\n", stats.latency_micros.p95);
  std::printf("  latency p99   %10.2f us\n", stats.latency_micros.p99);
  std::printf("  latency max   %10.2f us\n", stats.latency_micros.max);
  std::printf("  visited nodes %10llu\n",
              static_cast<unsigned long long>(stats.visited_nodes));
  return 0;
}
