// Table 2: "Indoor venues used in experiments" — prints the analogue
// venues' #doors / #rooms / #edges next to the paper's values, and times
// venue generation per dataset.
//
//   VIPTREE_SCALE= overrides every dataset's scale (via bench_common's
//   ScaleFor). No query workload, so VIPTREE_QUERIES has no effect here.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"

namespace viptree {
namespace bench {
namespace {

void PrintTable2() {
  std::printf("\n=== Table 2: Indoor venues used in experiments ===\n");
  std::printf("%-6s | %10s %10s %12s | %10s %10s %12s | %s\n", "venue",
              "doors", "rooms", "edges", "p.doors", "p.rooms", "p.edges",
              "scale");
  for (synth::Dataset d : AllBenchDatasets()) {
    const DatasetBundle& bundle = GetDataset(d);
    std::printf("%-6s | %10zu %10zu %12zu | %10zu %10zu %12zu | %.2f\n",
                bundle.info.name.c_str(), bundle.venue.NumDoors(),
                bundle.venue.NumPartitions(), bundle.graph.NumEdges(),
                bundle.info.paper_doors, bundle.info.paper_rooms,
                bundle.info.paper_edges, ScaleFor(d));
  }
  std::printf("(p.* columns are the paper's Table 2; scale <1 means the\n"
              " analogue is built below paper magnitude, see bench_common.h)\n\n");
}

void BM_GenerateVenue(benchmark::State& state, synth::Dataset dataset) {
  for (auto _ : state) {
    const Venue venue = synth::MakeDataset(dataset, ScaleFor(dataset));
    benchmark::DoNotOptimize(venue.NumDoors());
  }
}

}  // namespace
}  // namespace bench
}  // namespace viptree

int main(int argc, char** argv) {
  using namespace viptree;
  using namespace viptree::bench;
  PrintTable2();
  for (synth::Dataset d : AllBenchDatasets()) {
    benchmark::RegisterBenchmark(
        ("Table2/Generate/" + synth::InfoFor(d).name).c_str(),
        [d](benchmark::State& state) { BM_GenerateVenue(state, d); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
