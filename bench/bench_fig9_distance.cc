// Fig. 9: shortest distance queries.
//   (a) the DistMx no-through-door optimization: average number of door
//       pairs examined by DistMx-- (unoptimized), DistMx (optimized) and
//       VIP-Tree (superior-door pairs), printed as a table;
//   (b) per-query latency of all six algorithms across the venues,
//       as google-benchmark series.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "core/ip_tree.h"

namespace viptree {
namespace bench {
namespace {

void PrintFig9a() {
  std::printf("\n=== Fig. 9(a): avg #pairs of doors per SD query ===\n");
  std::printf("%-6s | %10s %10s %10s\n", "venue", "DistMx--", "DistMx",
              "VIP-Tree");
  for (synth::Dataset d : AllBenchDatasets()) {
    if (!DistMxFeasible(d)) continue;
    DatasetBundle& bundle = GetDataset(d);
    const DistanceMatrix matrix(bundle.venue, bundle.graph);
    const IPTree tree = IPTree::Build(bundle.venue, bundle.graph);
    const auto pairs = QueryPairs(d, 200);
    double unopt = 0.0;
    double opt = 0.0;
    double vip = 0.0;
    for (const auto& [s, t] : pairs) {
      matrix.Distance(s, t, false);
      unopt += static_cast<double>(matrix.last_pair_count());
      matrix.Distance(s, t, true);
      opt += static_cast<double>(matrix.last_pair_count());
      vip += static_cast<double>(tree.SuperiorDoors(s.partition).size() *
                                 tree.SuperiorDoors(t.partition).size());
    }
    const double n = static_cast<double>(pairs.size());
    std::printf("%-6s | %10.2f %10.2f %10.2f\n",
                synth::InfoFor(d).name.c_str(), unopt / n, opt / n, vip / n);
  }
  std::printf("(paper: ~47-67 for DistMx--, ~9-12 for DistMx and VIP)\n\n");
}

void BM_ShortestDistance(benchmark::State& state, synth::Dataset dataset,
                         EngineKind kind) {
  // The kVipTree series runs through the engine::QueryEngine façade (the
  // baselines adapter delegates to it), so this measures the serving path.
  QueryEngine& engine = GetEngine(dataset, kind);
  const auto pairs = QueryPairs(dataset, NumQueries());
  size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(engine.Distance(s, t));
  }
}

}  // namespace
}  // namespace bench
}  // namespace viptree

int main(int argc, char** argv) {
  using namespace viptree;
  using namespace viptree::bench;
  PrintFig9a();
  std::printf("=== Fig. 9(b): shortest distance query time ===\n");
  for (synth::Dataset d : AllBenchDatasets()) {
    for (EngineKind kind : DistanceCompetitors()) {
      if (kind == EngineKind::kDistMx && !DistMxFeasible(d)) continue;
      benchmark::RegisterBenchmark(
          ("Fig9b/SD/" + synth::InfoFor(d).name + "/" + EngineName(kind))
              .c_str(),
          [d, kind](benchmark::State& state) {
            BM_ShortestDistance(state, d, kind);
          })
          ->Unit(benchmark::kMicrosecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
