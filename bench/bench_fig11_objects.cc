// Fig. 11: kNN and range queries.
//   (a) kNN latency vs k in {1, 5, 10}            (Men-2, 50 objects)
//   (b) kNN latency vs #objects in {10,50,100,500} (Men-2, k = 5)
//   (c) kNN latency across venues                  (k = 5, 50 objects)
//   (d) range query latency across venues          (r = 100 m, 50 objects)

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace viptree {
namespace bench {
namespace {

constexpr size_t kDefaultObjects = 50;
constexpr size_t kDefaultK = 5;
constexpr double kDefaultRange = 100.0;

// Engines keep the most recent object set; serialize object configuration
// through this helper.
QueryEngine& EngineWithObjects(synth::Dataset dataset, EngineKind kind,
                               size_t num_objects) {
  QueryEngine& engine = GetEngine(dataset, kind);
  engine.SetObjects(Objects(dataset, num_objects));
  return engine;
}

void BM_Knn(benchmark::State& state, synth::Dataset dataset, EngineKind kind,
            size_t num_objects, size_t k) {
  QueryEngine& engine = EngineWithObjects(dataset, kind, num_objects);
  const auto points = QueryPoints(dataset, NumQueries());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Knn(points[i++ % points.size()], k));
  }
}

void BM_Range(benchmark::State& state, synth::Dataset dataset,
              EngineKind kind, double radius) {
  QueryEngine& engine = EngineWithObjects(dataset, kind, kDefaultObjects);
  const auto points = QueryPoints(dataset, NumQueries());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.Range(points[i++ % points.size()], radius));
  }
}

}  // namespace
}  // namespace bench
}  // namespace viptree

int main(int argc, char** argv) {
  using namespace viptree;
  using namespace viptree::bench;
  const synth::Dataset men2 = synth::Dataset::kMen2;

  std::printf("=== Fig. 11(a): kNN vs k (Men-2, 50 objects) ===\n");
  for (size_t k : {1u, 5u, 10u}) {
    for (EngineKind kind : ObjectCompetitors()) {
      benchmark::RegisterBenchmark(
          ("Fig11a/kNN/k=" + std::to_string(k) + "/" + EngineName(kind))
              .c_str(),
          [men2, kind, k](benchmark::State& state) {
            BM_Knn(state, men2, kind, kDefaultObjects, k);
          })
          ->Unit(benchmark::kMicrosecond);
    }
  }

  std::printf("=== Fig. 11(b): kNN vs #objects (Men-2, k=5) ===\n");
  for (size_t objects : {10u, 50u, 100u, 500u}) {
    for (EngineKind kind : ObjectCompetitors()) {
      benchmark::RegisterBenchmark(
          ("Fig11b/kNN/objects=" + std::to_string(objects) + "/" +
           EngineName(kind))
              .c_str(),
          [men2, kind, objects](benchmark::State& state) {
            BM_Knn(state, men2, kind, objects, kDefaultK);
          })
          ->Unit(benchmark::kMicrosecond);
    }
  }

  std::printf("=== Fig. 11(c)/(d): kNN and range across venues ===\n");
  for (synth::Dataset d : viptree::bench::AllBenchDatasets()) {
    for (EngineKind kind : ObjectCompetitors()) {
      if (kind == EngineKind::kDistAwPlusPlus && !DistMxFeasible(d)) continue;
      benchmark::RegisterBenchmark(
          ("Fig11c/kNN/" + synth::InfoFor(d).name + "/" + EngineName(kind))
              .c_str(),
          [d, kind](benchmark::State& state) {
            BM_Knn(state, d, kind, kDefaultObjects, kDefaultK);
          })
          ->Unit(benchmark::kMicrosecond);
      benchmark::RegisterBenchmark(
          ("Fig11d/Range/" + synth::InfoFor(d).name + "/" + EngineName(kind))
              .c_str(),
          [d, kind](benchmark::State& state) {
            BM_Range(state, d, kind, kDefaultRange);
          })
          ->Unit(benchmark::kMicrosecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
