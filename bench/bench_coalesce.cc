// A/B benchmark for the execution planner (engine/exec_plan.h): coalesced
// RunBatch vs sequential RunBatch vs the cross-request distance cache on
// source-skewed batches — the access pattern coalescing exists for (many
// concurrent queries leaving the same entrance/lobby/POI, a zipfian
// distribution over a small hot source pool).
//
// Three configurations per workload, all single-threaded so the ratio
// isolates the planner (not parallelism):
//   sequential  RunBatch, coalescing off, cache off — the baseline;
//   coalesced   RunBatch, coalescing on (window 64), cache off;
//   cache       RunBatch, coalescing off, LRU distance cache on — the
//               PR-8 alternative way to exploit repetition, for context.
//
// Results are bit-identical across all configurations (the planner's
// contract); the bench CHECKs coalesced against sequential as it runs and
// prints the planner's group/ascent accounting. Respects VIPTREE_SCALE /
// VIPTREE_QUERIES like every other bench.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/check.h"
#include "core/distance_cache.h"
#include "engine/query_engine.h"

namespace viptree {
namespace bench {
namespace {

constexpr size_t kHotSources = 16;  // distinct sources in the zipfian pool
// Whole-batch window: RunBatch hands the planner the full batch at once,
// so the ratio measures the planner's grouping, not how a latency-bounded
// serving window happens to fragment it (the Service default stays 64).
constexpr size_t kWindow = 4096;

// Zipfian sampler over ranks 0..n-1: P(r) proportional to 1/(r+1). The
// classic "everyone routes from the main entrance" skew — rank 0 draws
// ~29% of a 16-entry pool, the tail stays warm but rare.
class Zipf {
 public:
  Zipf(size_t n, Rng& rng) : rng_(rng) {
    cumulative_.reserve(n);
    double total = 0.0;
    for (size_t r = 0; r < n; ++r) {
      total += 1.0 / static_cast<double>(r + 1);
      cumulative_.push_back(total);
    }
  }

  size_t Next() {
    const double u = rng_.UniformReal(0.0, cumulative_.back());
    for (size_t r = 0; r < cumulative_.size(); ++r) {
      if (u < cumulative_[r]) return r;
    }
    return cumulative_.size() - 1;
  }

 private:
  Rng& rng_;
  std::vector<double> cumulative_;
};

// Source-skewed workload: sources zipfian over a small hot pool, targets
// (and kNN ks) uniform. `knn_fraction` of the queries are kNN from the
// same skewed sources, the rest are distance queries.
std::vector<engine::Query> SkewedWorkload(const Venue& venue, size_t n,
                                          double knn_fraction,
                                          uint64_t seed) {
  Rng rng(seed);
  std::vector<IndoorPoint> pool;
  pool.reserve(kHotSources);
  for (size_t i = 0; i < kHotSources; ++i) {
    pool.push_back(synth::RandomIndoorPoint(venue, rng));
  }
  Zipf zipf(pool.size(), rng);
  std::vector<engine::Query> queries;
  queries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const IndoorPoint& source = pool[zipf.Next()];
    if (rng.Chance(knn_fraction)) {
      queries.push_back(
          engine::Query::Knn(source, 3 + rng.UniformIndex(5)));
    } else {
      queries.push_back(engine::Query::Distance(
          source, synth::RandomIndoorPoint(venue, rng)));
    }
  }
  return queries;
}

bool BitIdentical(const engine::Result& a, const engine::Result& b) {
  if (std::memcmp(&a.distance, &b.distance, sizeof(double)) != 0) {
    return false;
  }
  if (a.objects.size() != b.objects.size()) return false;
  for (size_t i = 0; i < a.objects.size(); ++i) {
    if (a.objects[i].object != b.objects[i].object ||
        std::memcmp(&a.objects[i].distance, &b.objects[i].distance,
                    sizeof(double)) != 0) {
      return false;
    }
  }
  return a.doors == b.doors;
}

struct RunResult {
  double wall_ms = 0.0;
  double qps = 0.0;
  engine::BatchResult batch;
};

RunResult RunOnce(const engine::QueryEngine& engine,
                  const std::vector<engine::Query>& queries, bool coalesce) {
  engine::BatchOptions options;
  options.num_threads = 1;
  options.coalesce.enabled = coalesce;
  options.coalesce.window = kWindow;
  RunResult run;
  const Timer wall;
  run.batch = engine.RunBatch(
      Span<const engine::Query>(queries.data(), queries.size()), options);
  run.wall_ms = wall.ElapsedMillis();
  run.qps = queries.size() / (run.wall_ms / 1000.0);
  return run;
}

void RunWorkload(engine::QueryEngine& engine, const char* label,
                 const std::vector<engine::Query>& queries) {
  // Warm-up pass so lazily-built structures don't bias the first timing.
  RunOnce(engine, queries, /*coalesce=*/false);

  const RunResult sequential = RunOnce(engine, queries, /*coalesce=*/false);
  const RunResult coalesced = RunOnce(engine, queries, /*coalesce=*/true);
  for (size_t i = 0; i < queries.size(); ++i) {
    VIPTREE_CHECK_MSG(
        BitIdentical(sequential.batch.results[i], coalesced.batch.results[i]),
        "coalesced RunBatch diverged from sequential");
  }

  // The caching alternative: same sequential execution, exact memoization.
  DistanceCacheOptions cache_options;
  cache_options.enabled = true;
  engine.EnableDistanceCache(cache_options);
  const RunResult cached = RunOnce(engine, queries, /*coalesce=*/false);
  engine.SetDistanceCache(nullptr);

  const engine::PlanStats& plan = coalesced.batch.stats.plan;
  std::printf("%s: %zu queries\n", label, queries.size());
  std::printf("  %-10s %10.2f ms %12.0f q/s\n", "sequential",
              sequential.wall_ms, sequential.qps);
  std::printf("  %-10s %10.2f ms %12.0f q/s   %.2fx\n", "coalesced",
              coalesced.wall_ms, coalesced.qps,
              coalesced.qps / sequential.qps);
  std::printf("  %-10s %10.2f ms %12.0f q/s   %.2fx\n", "cache",
              cached.wall_ms, cached.qps, cached.qps / sequential.qps);
  std::printf(
      "  plan: %llu groups over %llu queries, %llu ascents computed, "
      "%llu reused\n",
      static_cast<unsigned long long>(plan.groups),
      static_cast<unsigned long long>(plan.coalesced_queries),
      static_cast<unsigned long long>(plan.ascents_computed),
      static_cast<unsigned long long>(plan.ascents_reused));
}

void RunDataset(synth::Dataset dataset, size_t num_queries) {
  DatasetBundle& data = GetDataset(dataset);
  std::printf("dataset %s: %zu partitions, %zu doors\n",
              data.info.name.c_str(), data.venue.NumPartitions(),
              data.venue.NumDoors());
  engine::QueryEngine engine(engine::VenueBundle::BuildFrom(
      data.venue, data.graph, Objects(dataset, 50)));

  const uint64_t seed = 0x21BF ^ static_cast<uint64_t>(dataset);
  RunWorkload(engine, "  distance-only",
              SkewedWorkload(data.venue, num_queries,
                             /*knn_fraction=*/0.0, seed));
  RunWorkload(engine, "  knn-only",
              SkewedWorkload(data.venue, num_queries,
                             /*knn_fraction=*/1.0, seed + 1));
  RunWorkload(engine, "  mixed distance/knn",
              SkewedWorkload(data.venue, num_queries,
                             /*knn_fraction=*/0.3, seed + 2));
}

}  // namespace
}  // namespace bench
}  // namespace viptree

int main() {
  using namespace viptree;
  using namespace viptree::bench;

  RunDataset(synth::Dataset::kMen2, NumQueries() * 4);
  // City scale: fewer queries — the venue itself is the load.
  RunDataset(synth::Dataset::kCity, NumQueries());
  return 0;
}
