// Ablations of the two indoor-specific design choices the paper credits
// for the index's performance (§3.1.1 and §5):
//
//   1. superior doors: restrict Eq. (1)'s minimization to the superior
//      doors of the source partition vs. all of its doors;
//   2. leaf assembly: the paper's hallway-aware partition grouping
//      (§2.1.2) vs. feeding the same IP-Tree a leaf assignment produced by
//      the multilevel *graph* partitioner G-tree uses — the comparison
//      behind §5's claim that "we design a new algorithm that carefully
//      exploits the properties of the indoor space to minimize the total
//      number of access doors".
//
// Reported: SD latency for (1); access-door statistics and SD latency for
// (2).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "core/distance_query.h"
#include "core/leaf_assembler.h"
#include "core/vip_tree.h"
#include "partition/multilevel_partitioner.h"

namespace viptree {
namespace bench {
namespace {

constexpr synth::Dataset kDataset = synth::Dataset::kMen2;

// A leaf assignment from the graph partitioner: doors are partitioned into
// as many groups as the indoor-aware assembler produces, and every indoor
// partition follows its first door.
std::vector<int> GraphPartitionedLeaves(const Venue& venue,
                                        const D2DGraph& graph,
                                        int target_leaves) {
  MultilevelPartitioner partitioner(graph, /*seed=*/5);
  std::vector<DoorId> all(graph.NumVertices());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<DoorId>(i);
  const std::vector<int> door_group =
      partitioner.Partition(all, target_leaves);
  std::vector<int> assignment(venue.NumPartitions(), -1);
  std::vector<bool> used(target_leaves, false);
  for (PartitionId p = 0; p < (PartitionId)venue.NumPartitions(); ++p) {
    assignment[p] = door_group[venue.DoorsOf(p)[0]];
    used[assignment[p]] = true;
  }
  // Compact ids (ForcedLeaves requires dense ids).
  std::vector<int> remap(target_leaves, -1);
  int next = 0;
  for (int g = 0; g < target_leaves; ++g) {
    if (used[g]) remap[g] = next++;
  }
  for (int& a : assignment) a = remap[a];
  return assignment;
}

void PrintLeafAssemblyAblation() {
  DatasetBundle& bundle = GetDataset(kDataset);
  const LeafAssignment indoor = AssembleLeaves(bundle.venue);
  const IPTree indoor_tree = IPTree::Build(bundle.venue, bundle.graph);
  const std::vector<int> graph_leaves = GraphPartitionedLeaves(
      bundle.venue, bundle.graph, indoor.num_leaves);
  const IPTree graph_tree =
      IPTree::Build(bundle.venue, bundle.graph,
                    {.forced_leaf_assignment = graph_leaves});

  const IPTree::Stats a = indoor_tree.ComputeStats();
  const IPTree::Stats b = graph_tree.ComputeStats();
  std::printf("\n=== Ablation: leaf assembly on %s ===\n",
              bundle.info.name.c_str());
  std::printf("%-28s | %10s %10s\n", "", "indoor", "graph-part");
  std::printf("%-28s | %10zu %10zu\n", "leaves", a.num_leaves, b.num_leaves);
  std::printf("%-28s | %10.2f %10.2f\n", "avg access doors (rho)",
              a.avg_access_doors, b.avg_access_doors);
  std::printf("%-28s | %10zu %10zu\n", "max access doors",
              a.max_access_doors, b.max_access_doors);
  std::printf("%-28s | %10.2f %10.2f\n", "index MB",
              a.memory_bytes / 1048576.0, b.memory_bytes / 1048576.0);
  std::printf("(the indoor-aware assembler should keep rho several times\n"
              " smaller, which is what makes the matrices tiny)\n\n");
}

void BM_SdSuperiorDoors(benchmark::State& state, bool use_superior) {
  DatasetBundle& bundle = GetDataset(kDataset);
  static VIPTree* vip = new VIPTree(
      VIPTree::Build(bundle.venue, bundle.graph));
  VIPDistanceQuery query(*vip, {.use_superior_doors = use_superior});
  const auto pairs = QueryPairs(kDataset, NumQueries());
  size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(query.Distance(s, t));
  }
}

void BM_SdLeafAssembly(benchmark::State& state, bool indoor_aware) {
  DatasetBundle& bundle = GetDataset(kDataset);
  static std::map<bool, std::unique_ptr<IPTree>>* trees =
      new std::map<bool, std::unique_ptr<IPTree>>();
  auto it = trees->find(indoor_aware);
  if (it == trees->end()) {
    IPTreeOptions options;
    if (!indoor_aware) {
      const LeafAssignment indoor = AssembleLeaves(bundle.venue);
      options.forced_leaf_assignment = GraphPartitionedLeaves(
          bundle.venue, bundle.graph, indoor.num_leaves);
    }
    it = trees
             ->emplace(indoor_aware,
                       std::make_unique<IPTree>(IPTree::Build(
                           bundle.venue, bundle.graph, options)))
             .first;
  }
  IPDistanceQuery query(*it->second);
  const auto pairs = QueryPairs(kDataset, NumQueries());
  size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(query.Distance(s, t));
  }
}

}  // namespace
}  // namespace bench
}  // namespace viptree

int main(int argc, char** argv) {
  using namespace viptree;
  using namespace viptree::bench;
  PrintLeafAssemblyAblation();
  benchmark::RegisterBenchmark(
      "Ablation/SD/superior-doors",
      [](benchmark::State& s) { BM_SdSuperiorDoors(s, true); })
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark(
      "Ablation/SD/all-partition-doors",
      [](benchmark::State& s) { BM_SdSuperiorDoors(s, false); })
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark(
      "Ablation/SD/indoor-aware-leaves",
      [](benchmark::State& s) { BM_SdLeafAssembly(s, true); })
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark(
      "Ablation/SD/graph-partitioned-leaves",
      [](benchmark::State& s) { BM_SdLeafAssembly(s, false); })
      ->Unit(benchmark::kMicrosecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
