// Shared support for the paper-reproduction benchmarks: dataset loading at
// laptop-friendly scale (override with VIPTREE_SCALE / VIPTREE_QUERIES),
// lazily cached engines, and deterministic workloads.
//
// Scale note: MC/MC-2/Men/Men-2 analogues build at paper magnitude by
// default; the Clayton campus analogues default to 12% of the paper's room
// counts so a full bench sweep finishes in minutes. Set VIPTREE_SCALE=1.0
// to build paper-magnitude Clayton venues (several GB / tens of minutes for
// the quadratic DistMx competitor, exactly as §4 warns).

#ifndef VIPTREE_BENCH_BENCH_COMMON_H_
#define VIPTREE_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/dist_matrix.h"
#include "baselines/engines.h"
#include "common/rng.h"
#include "engine/query_engine.h"
#include "graph/d2d_graph.h"
#include "synth/objects.h"
#include "synth/presets.h"

namespace viptree {
namespace bench {

inline double EnvScaleOverride() {
  const char* env = std::getenv("VIPTREE_SCALE");
  return env != nullptr ? std::atof(env) : 0.0;
}

inline size_t NumQueries() {
  const char* env = std::getenv("VIPTREE_QUERIES");
  const long v = env != nullptr ? std::atol(env) : 0;
  return v > 0 ? static_cast<size_t>(v) : 500;
}

inline double ScaleFor(synth::Dataset dataset) {
  const double override_scale = EnvScaleOverride();
  if (override_scale > 0.0) return override_scale;
  switch (dataset) {
    case synth::Dataset::kCL:
    case synth::Dataset::kCL2:
      return 0.12;
    case synth::Dataset::kCity:
      return 0.05;  // ~320 building-copies dominate cost even at small rooms
    default:
      return 1.0;
  }
}

struct DatasetBundle {
  synth::DatasetInfo info;
  Venue venue;
  D2DGraph graph;

  explicit DatasetBundle(synth::Dataset dataset)
      : info(synth::InfoFor(dataset)),
        venue(synth::MakeDataset(dataset, ScaleFor(dataset))),
        graph(venue) {}
};

// Process-wide dataset cache (benchmarks run sequentially).
inline DatasetBundle& GetDataset(synth::Dataset dataset) {
  static std::map<synth::Dataset, std::unique_ptr<DatasetBundle>>* cache =
      new std::map<synth::Dataset, std::unique_ptr<DatasetBundle>>();
  auto it = cache->find(dataset);
  if (it == cache->end()) {
    it = cache->emplace(dataset, std::make_unique<DatasetBundle>(dataset))
             .first;
  }
  return *it->second;
}

// The paper could not construct the distance matrix beyond Men-2 (§4.2);
// mirror that cut-off (also applies to DistAw++ which depends on it).
inline bool DistMxFeasible(synth::Dataset dataset) {
  return dataset != synth::Dataset::kCL && dataset != synth::Dataset::kCL2;
}

// Engine cache keyed by (dataset, kind); the DistMx instance is shared with
// DistAw++ like in the paper's setup.
inline QueryEngine& GetEngine(synth::Dataset dataset, EngineKind kind) {
  using Key = std::pair<synth::Dataset, EngineKind>;
  static std::map<Key, std::unique_ptr<QueryEngine>>* cache =
      new std::map<Key, std::unique_ptr<QueryEngine>>();
  static std::map<synth::Dataset, std::unique_ptr<DistanceMatrix>>* matrices =
      new std::map<synth::Dataset, std::unique_ptr<DistanceMatrix>>();
  const Key key{dataset, kind};
  auto it = cache->find(key);
  if (it == cache->end()) {
    DatasetBundle& bundle = GetDataset(dataset);
    const DistanceMatrix* shared = nullptr;
    if (kind == EngineKind::kDistMx || kind == EngineKind::kDistAwPlusPlus) {
      auto mit = matrices->find(dataset);
      if (mit == matrices->end()) {
        mit = matrices
                  ->emplace(dataset, std::make_unique<DistanceMatrix>(
                                         bundle.venue, bundle.graph))
                  .first;
      }
      shared = mit->second.get();
    }
    it = cache
             ->emplace(key, MakeEngineWithMatrix(kind, bundle.venue,
                                                 bundle.graph, shared))
             .first;
  }
  return *it->second;
}

inline std::vector<std::pair<IndoorPoint, IndoorPoint>> QueryPairs(
    synth::Dataset dataset, size_t n) {
  Rng rng(0xBEEF ^ static_cast<uint64_t>(dataset));
  return synth::RandomPointPairs(GetDataset(dataset).venue, n, rng);
}

inline std::vector<IndoorPoint> QueryPoints(synth::Dataset dataset,
                                            size_t n) {
  Rng rng(0xFACE ^ static_cast<uint64_t>(dataset));
  return synth::RandomQueryPoints(GetDataset(dataset).venue, n, rng);
}

inline std::vector<IndoorPoint> Objects(synth::Dataset dataset,
                                        size_t count) {
  Rng rng(0xD00D ^ static_cast<uint64_t>(dataset) ^ (count << 8));
  return synth::PlaceObjects(GetDataset(dataset).venue, count, rng);
}

// The serving-layer mixed workload: 40% distance, 20% path, 20% kNN, 10%
// range, 10% boolean keyword (falling back to kNN when the engine has no
// keyword index). One generator shared by bench_batch_throughput and
// bench_service_throughput, so their throughput numbers stay comparable.
inline std::vector<engine::Query> MixedEngineWorkload(const Venue& venue,
                                                      uint64_t seed, size_t n,
                                                      bool keywords) {
  Rng rng(seed);
  std::vector<engine::Query> queries;
  queries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const IndoorPoint a = synth::RandomIndoorPoint(venue, rng);
    const IndoorPoint b = synth::RandomIndoorPoint(venue, rng);
    switch (i % 10) {
      case 0:
      case 1:
      case 2:
      case 3:
        queries.push_back(engine::Query::Distance(a, b));
        break;
      case 4:
      case 5:
        queries.push_back(engine::Query::Path(a, b));
        break;
      case 6:
      case 7:
        queries.push_back(engine::Query::Knn(a, 5));
        break;
      case 8:
        queries.push_back(engine::Query::Range(a, 100.0));
        break;
      default:
        if (keywords) {
          queries.push_back(engine::Query::BooleanKnn(a, 3, {"atm"}));
        } else {
          queries.push_back(engine::Query::Knn(a, 3));
        }
        break;
    }
  }
  return queries;
}

inline const std::vector<synth::Dataset>& AllBenchDatasets() {
  static const std::vector<synth::Dataset>* all =
      new std::vector<synth::Dataset>{
          synth::Dataset::kMC,  synth::Dataset::kMC2, synth::Dataset::kMen,
          synth::Dataset::kMen2, synth::Dataset::kCL,  synth::Dataset::kCL2};
  return *all;
}

inline const std::vector<EngineKind>& DistanceCompetitors() {
  static const std::vector<EngineKind>* kinds = new std::vector<EngineKind>{
      EngineKind::kVipTree, EngineKind::kIpTree,  EngineKind::kDistAw,
      EngineKind::kDistMx,  EngineKind::kGTree,   EngineKind::kRoad};
  return *kinds;
}

inline const std::vector<EngineKind>& ObjectCompetitors() {
  static const std::vector<EngineKind>* kinds = new std::vector<EngineKind>{
      EngineKind::kVipTree, EngineKind::kIpTree,
      EngineKind::kDistAw,  EngineKind::kDistAwPlusPlus,
      EngineKind::kGTree,   EngineKind::kRoad};
  return *kinds;
}

}  // namespace bench
}  // namespace viptree

#endif  // VIPTREE_BENCH_BENCH_COMMON_H_
