// Fig. 8: indexing cost — (a) construction time and (b) index size for
// every index across the six venues. The distance matrix is skipped beyond
// Men-2, exactly as in the paper ("The distance matrix ... cannot be built
// on the venues larger than Men-2").
//
//   VIPTREE_SCALE= shrinks or grows every venue (via bench_common's
//   ScaleFor). Construction-only, so VIPTREE_QUERIES has no effect here.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/stats.h"

namespace viptree {
namespace bench {
namespace {

void BM_Construct(benchmark::State& state, synth::Dataset dataset,
                  EngineKind kind) {
  DatasetBundle& bundle = GetDataset(dataset);
  for (auto _ : state) {
    std::unique_ptr<QueryEngine> engine =
        MakeEngine(kind, bundle.venue, bundle.graph);
    state.counters["index_MB"] = benchmark::Counter(
        static_cast<double>(engine->IndexMemoryBytes()) / (1024.0 * 1024.0));
  }
}

}  // namespace
}  // namespace bench
}  // namespace viptree

int main(int argc, char** argv) {
  using namespace viptree;
  using namespace viptree::bench;
  std::printf("=== Fig. 8: index construction time (a) and size (b) ===\n");
  const std::vector<EngineKind> kinds = {
      EngineKind::kVipTree, EngineKind::kIpTree, EngineKind::kDistAw,
      EngineKind::kGTree,   EngineKind::kRoad,   EngineKind::kDistMx};
  for (synth::Dataset d : AllBenchDatasets()) {
    for (EngineKind kind : kinds) {
      if (kind == EngineKind::kDistMx && !DistMxFeasible(d)) continue;
      benchmark::RegisterBenchmark(
          ("Fig8/Construct/" + synth::InfoFor(d).name + "/" +
           EngineName(kind))
              .c_str(),
          [d, kind](benchmark::State& state) { BM_Construct(state, d, kind); })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
