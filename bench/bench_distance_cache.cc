// A/B benchmark for the cross-request distance cache
// (core/distance_cache.h): cache-off vs the three eviction policies (LRU,
// 2Q, S2Q) on zone-skewed repeat workloads — the access pattern the cache
// exists for (venue users keep asking about the same lobby/entrance/POI
// doors, with a uniform cold tail on top).
//
// Two workloads:
//   (a) door-pair: VIPDistanceQuery::DoorDistance over pairs where 90% of
//       endpoints come from a small hot door set and 10% are uniform cold
//       scans. Capacity is set well below the total key population so the
//       cold tail applies real eviction pressure — this is exactly the
//       pattern where 2Q/S2Q's scan resistance should beat plain LRU.
//   (b) engine-level: the mixed serving workload (distance/path/kNN/range)
//       through engine::QueryEngine with query points drawn from a small
//       hot pool 90% of the time.
//
// Prints per-policy p50/avg latency, hit rate and evictions. Results are
// bit-identical across all configurations (the cache memoizes exact
// values); the bench CHECKs that as it runs. Respects VIPTREE_SCALE /
// VIPTREE_QUERIES like every other bench.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/check.h"
#include "core/distance_cache.h"
#include "core/distance_query.h"
#include "core/vip_tree.h"
#include "engine/query_engine.h"

namespace viptree {
namespace bench {
namespace {

constexpr double kHotFraction = 0.9;
constexpr size_t kHotDoors = 32;
constexpr size_t kHotPoints = 64;
constexpr size_t kChunk = 32;  // queries per latency sample

struct PolicyRun {
  std::string name;
  Summary latency_micros;  // per-query, sampled per kChunk queries
  double avg_micros = 0.0;
  CacheCounters counters;
  bool cached = false;
};

// The skewed door-pair stream: mostly repeats over a small hot set, with a
// uniform cold tail that churns the cache.
std::vector<std::pair<DoorId, DoorId>> DoorPairWorkload(const Venue& venue,
                                                        size_t n,
                                                        uint64_t seed) {
  Rng rng(seed);
  const size_t num_doors = venue.NumDoors();
  std::vector<DoorId> hot;
  hot.reserve(kHotDoors);
  for (size_t i = 0; i < kHotDoors && i < num_doors; ++i) {
    hot.push_back(static_cast<DoorId>(rng.UniformIndex(num_doors)));
  }
  std::vector<std::pair<DoorId, DoorId>> pairs;
  pairs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Chance(kHotFraction)) {
      pairs.emplace_back(hot[rng.UniformIndex(hot.size())],
                         hot[rng.UniformIndex(hot.size())]);
    } else {
      pairs.emplace_back(static_cast<DoorId>(rng.UniformIndex(num_doors)),
                         static_cast<DoorId>(rng.UniformIndex(num_doors)));
    }
  }
  return pairs;
}

// Runs the door-pair workload through a fresh VIPDistanceQuery, optionally
// with a cache, and checks every answer against the cache-off reference.
PolicyRun RunDoorPairs(const VIPTree& tree,
                       const std::vector<std::pair<DoorId, DoorId>>& pairs,
                       const char* name, DistanceCache* cache,
                       const std::vector<double>* reference,
                       std::vector<double>* answers) {
  PolicyRun run;
  run.name = name;
  run.cached = cache != nullptr;
  VIPDistanceQuery query(tree, {}, cache);
  std::vector<double> samples;
  samples.reserve(pairs.size() / kChunk + 1);
  answers->clear();
  answers->reserve(pairs.size());
  double total = 0.0;
  for (size_t i = 0; i < pairs.size(); i += kChunk) {
    const size_t end = std::min(pairs.size(), i + kChunk);
    const Timer timer;
    for (size_t j = i; j < end; ++j) {
      answers->push_back(query.DoorDistance(pairs[j].first, pairs[j].second));
    }
    const double elapsed = timer.ElapsedMicros();
    total += elapsed;
    samples.push_back(elapsed / static_cast<double>(end - i));
  }
  if (reference != nullptr) {
    // Exactness contract: the cache must never change a single bit.
    VIPTREE_CHECK_MSG(*answers == *reference,
                      "cached DoorDistance diverged from cache-off");
  }
  run.latency_micros = Summarize(samples);
  run.avg_micros = total / static_cast<double>(pairs.size());
  if (cache != nullptr) run.counters = cache->Counters();
  return run;
}

// The engine-level mixed workload with hot-pool repeats: 90% of queries
// reuse one of kHotPoints query points, 10% are fresh uniform points.
std::vector<engine::Query> SkewedEngineWorkload(const Venue& venue, size_t n,
                                                uint64_t seed) {
  Rng rng(seed);
  std::vector<IndoorPoint> pool;
  pool.reserve(kHotPoints);
  for (size_t i = 0; i < kHotPoints; ++i) {
    pool.push_back(synth::RandomIndoorPoint(venue, rng));
  }
  auto point = [&]() -> IndoorPoint {
    if (rng.Chance(kHotFraction)) return pool[rng.UniformIndex(pool.size())];
    return synth::RandomIndoorPoint(venue, rng);
  };
  std::vector<engine::Query> queries;
  queries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const IndoorPoint a = point();
    const IndoorPoint b = point();
    switch (i % 10) {
      case 0: case 1: case 2: case 3:
        queries.push_back(engine::Query::Distance(a, b));
        break;
      case 4: case 5:
        queries.push_back(engine::Query::Path(a, b));
        break;
      case 6: case 7: case 8:
        queries.push_back(engine::Query::Knn(a, 5));
        break;
      default:
        queries.push_back(engine::Query::Range(a, 100.0));
        break;
    }
  }
  return queries;
}

PolicyRun RunEngineWorkload(engine::QueryEngine& engine,
                            const std::vector<engine::Query>& queries,
                            const char* name) {
  PolicyRun run;
  run.name = name;
  run.cached = engine.distance_cache() != nullptr;
  std::vector<double> samples;
  samples.reserve(queries.size() / kChunk + 1);
  double total = 0.0;
  for (size_t i = 0; i < queries.size(); i += kChunk) {
    const size_t end = std::min(queries.size(), i + kChunk);
    const Timer timer;
    for (size_t j = i; j < end; ++j) engine.Run(queries[j]);
    const double elapsed = timer.ElapsedMicros();
    total += elapsed;
    samples.push_back(elapsed / static_cast<double>(end - i));
  }
  run.latency_micros = Summarize(samples);
  run.avg_micros = total / static_cast<double>(queries.size());
  if (run.cached) run.counters = engine.distance_cache()->Counters();
  return run;
}

void PrintTable(const char* title, const std::vector<PolicyRun>& runs) {
  std::printf("%s\n", title);
  std::printf("  %-8s %12s %12s %10s %12s\n", "policy", "p50 us", "avg us",
              "hit rate", "evictions");
  for (const PolicyRun& run : runs) {
    if (run.cached) {
      std::printf("  %-8s %12.3f %12.3f %9.1f%% %12llu\n", run.name.c_str(),
                  run.latency_micros.p50, run.avg_micros,
                  100.0 * run.counters.hit_rate(),
                  static_cast<unsigned long long>(run.counters.evictions));
    } else {
      std::printf("  %-8s %12.3f %12.3f %10s %12s\n", run.name.c_str(),
                  run.latency_micros.p50, run.avg_micros, "-", "-");
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace viptree

int main() {
  using namespace viptree;
  using namespace viptree::bench;

  const synth::Dataset dataset = synth::Dataset::kMen2;
  DatasetBundle& data = GetDataset(dataset);
  std::printf("dataset %s: %zu partitions, %zu doors\n",
              data.info.name.c_str(), data.venue.NumPartitions(),
              data.venue.NumDoors());

  const VIPTree tree = VIPTree::Build(data.venue, data.graph, {});
  const size_t door_queries = NumQueries() * 20;
  const size_t engine_queries = NumQueries() * 4;

  const std::vector<std::pair<DoorId, DoorId>> pairs =
      DoorPairWorkload(data.venue, door_queries, /*seed=*/0x5EED);

  // Capacity far below the cold-tail key population, comfortably above the
  // hot set: the policies must keep the hot pairs resident through the
  // cold-scan churn.
  DistanceCacheOptions cache_options;
  cache_options.enabled = true;
  cache_options.capacity = 2048;

  const std::pair<const char*, CachePolicy> policies[] = {
      {"lru", CachePolicy::kLru},
      {"2q", CachePolicy::k2Q},
      {"s2q", CachePolicy::kS2Q},
  };

  {
    std::vector<PolicyRun> runs;
    std::vector<double> reference;
    std::vector<double> answers;
    runs.push_back(
        RunDoorPairs(tree, pairs, "off", nullptr, nullptr, &reference));
    for (const auto& [name, policy] : policies) {
      cache_options.policy = policy;
      DistanceCache cache(cache_options);
      runs.push_back(
          RunDoorPairs(tree, pairs, name, &cache, &reference, &answers));
    }
    PrintTable(
        ("door-pair workload: " + std::to_string(pairs.size()) +
         " queries, 90% over " + std::to_string(kHotDoors) +
         " hot doors, capacity " + std::to_string(cache_options.capacity))
            .c_str(),
        runs);
  }

  {
    engine::QueryEngine engine(
        engine::VenueBundle::BuildFrom(data.venue, data.graph,
                                       Objects(dataset, 50)));
    const std::vector<engine::Query> queries =
        SkewedEngineWorkload(data.venue, engine_queries, /*seed=*/0xCAFE);
    std::vector<PolicyRun> runs;
    runs.push_back(RunEngineWorkload(engine, queries, "off"));
    for (const auto& [name, policy] : policies) {
      cache_options.policy = policy;
      engine.EnableDistanceCache(cache_options);
      runs.push_back(RunEngineWorkload(engine, queries, name));
      engine.SetDistanceCache(nullptr);
    }
    PrintTable(("engine mixed workload: " + std::to_string(queries.size()) +
                " queries, 90% over " + std::to_string(kHotPoints) +
                " hot points")
                   .c_str(),
               runs);
  }
  return 0;
}
