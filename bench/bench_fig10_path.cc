// Fig. 10: shortest path queries.
//   (a) per-query latency (distance + full path recovery) of all six
//       algorithms across the venues;
//   (b) effect of the distance between source and target: queries on Men-2
//       bucketed into quintiles Q1..Q5 of the maximum venue distance (§4.3.2).

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.h"
#include "engine/query_engine.h"

namespace viptree {
namespace bench {
namespace {

void BM_ShortestPath(benchmark::State& state, synth::Dataset dataset,
                     EngineKind kind) {
  QueryEngine& engine = GetEngine(dataset, kind);
  const auto pairs = QueryPairs(dataset, NumQueries());
  std::vector<DoorId> doors;
  size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(engine.Path(s, t, &doors));
  }
}

// Pairs of Men-2 bucketed by distance quintile.
std::vector<std::vector<std::pair<IndoorPoint, IndoorPoint>>>
DistanceBuckets() {
  const synth::Dataset dataset = synth::Dataset::kMen2;
  DatasetBundle& bundle = GetDataset(dataset);
  const engine::QueryEngine engine(bundle.venue, bundle.graph,
                                   /*objects=*/{});
  const auto pairs = QueryPairs(dataset, 3000);
  std::vector<double> dist(pairs.size());
  double dmax = 0.0;
  for (size_t i = 0; i < pairs.size(); ++i) {
    dist[i] =
        engine.Run(engine::Query::Distance(pairs[i].first, pairs[i].second))
            .distance;
    dmax = std::max(dmax, dist[i]);
  }
  std::vector<std::vector<std::pair<IndoorPoint, IndoorPoint>>> buckets(5);
  for (size_t i = 0; i < pairs.size(); ++i) {
    const int q =
        std::min(4, static_cast<int>(dist[i] / (dmax / 5.0 + 1e-9)));
    buckets[q].push_back(pairs[i]);
  }
  return buckets;
}

void BM_PathByDistanceBand(
    benchmark::State& state, EngineKind kind,
    const std::vector<std::pair<IndoorPoint, IndoorPoint>>& pairs) {
  if (pairs.empty()) {
    state.SkipWithError("empty distance band");
    return;
  }
  QueryEngine& engine = GetEngine(synth::Dataset::kMen2, kind);
  std::vector<DoorId> doors;
  size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(engine.Path(s, t, &doors));
  }
}

}  // namespace
}  // namespace bench
}  // namespace viptree

int main(int argc, char** argv) {
  using namespace viptree;
  using namespace viptree::bench;
  std::printf("=== Fig. 10(a): shortest path query time per venue ===\n");
  for (synth::Dataset d : AllBenchDatasets()) {
    for (EngineKind kind : DistanceCompetitors()) {
      if (kind == EngineKind::kDistMx && !DistMxFeasible(d)) continue;
      benchmark::RegisterBenchmark(
          ("Fig10a/SP/" + synth::InfoFor(d).name + "/" + EngineName(kind))
              .c_str(),
          [d, kind](benchmark::State& state) {
            BM_ShortestPath(state, d, kind);
          })
          ->Unit(benchmark::kMicrosecond);
    }
  }

  std::printf("=== Fig. 10(b): SP time vs s-t distance band (Men-2) ===\n");
  static const auto buckets = DistanceBuckets();
  for (int q = 0; q < 5; ++q) {
    for (EngineKind kind : DistanceCompetitors()) {
      benchmark::RegisterBenchmark(
          ("Fig10b/SP/Q" + std::to_string(q + 1) + "/" + EngineName(kind))
              .c_str(),
          [kind, q](benchmark::State& state) {
            BM_PathByDistanceBand(state, kind, buckets[q]);
          })
          ->Unit(benchmark::kMicrosecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
