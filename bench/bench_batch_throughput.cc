// Batch query throughput of the engine façade: a mixed workload (shortest
// distance / path / kNN / range / boolean keyword) over the Men-2 venue,
// fanned across the RunBatch worker pool at 1 / 2 / 4 / 8 threads.
//
// Not a paper figure — this measures the serving layer added on top of the
// reproduction. Prints queries/sec, speedup over one thread, and the
// per-query latency distribution (p50/p95) collected by the engine itself.
//
//   VIPTREE_SCALE= / VIPTREE_QUERIES= shrink or grow the workload as with
//   the figure benchmarks.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "engine/query_engine.h"

namespace viptree {
namespace bench {
namespace {

namespace eng = ::viptree::engine;

int Main() {
  const synth::Dataset dataset = synth::Dataset::kMen2;
  DatasetBundle& bundle = GetDataset(dataset);
  const size_t cores = std::thread::hardware_concurrency();
  std::printf("venue %s: %zu partitions, %zu doors (%zu hardware threads)\n",
              bundle.info.name.c_str(), bundle.venue.NumPartitions(),
              bundle.venue.NumDoors(), cores);

  // 50 facilities; every other one is an ATM so boolean-keyword queries
  // have a non-trivial filter.
  const std::vector<IndoorPoint> facilities = Objects(dataset, 50);
  std::vector<std::vector<std::string>> keywords(facilities.size());
  for (size_t i = 0; i < facilities.size(); ++i) {
    keywords[i] = {i % 2 == 0 ? std::string("atm") : std::string("kiosk")};
  }

  Timer build_timer;
  eng::EngineOptions options;
  options.object_keywords = keywords;
  const eng::QueryEngine engine(bundle.venue, bundle.graph, facilities,
                                options);
  std::printf("engine built in %.1f ms (index %s)\n\n",
              build_timer.ElapsedMillis(),
              HumanBytes(engine.IndexMemoryBytes()).c_str());

  const std::vector<eng::Query> queries = MixedEngineWorkload(
      bundle.venue, 0xBA7C4, NumQueries() * 8, /*keywords=*/true);
  std::printf("workload: %zu mixed queries (40%% SD, 20%% SP, 20%% kNN, "
              "10%% range, 10%% boolean kNN)\n\n",
              queries.size());

  std::printf("%8s %12s %12s %9s %10s %10s\n", "threads", "wall ms",
              "queries/s", "speedup", "p50 us", "p95 us");
  double base_qps = 0.0;
  double speedup4 = 0.0;
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    eng::BatchOptions batch;
    batch.num_threads = threads;
    const eng::BatchResult run = engine.RunBatch(queries, batch);
    if (threads == 1) base_qps = run.stats.queries_per_second;
    const double speedup =
        base_qps > 0.0 ? run.stats.queries_per_second / base_qps : 0.0;
    if (threads == 4) speedup4 = speedup;
    std::printf("%8zu %12.2f %12.0f %8.2fx %10.2f %10.2f\n", threads,
                run.stats.wall_millis, run.stats.queries_per_second, speedup,
                run.stats.latency_micros.p50, run.stats.latency_micros.p95);
  }
  if (cores < 2) {
    std::printf(
        "\n4-thread speedup: %.2fx — this host exposes %zu hardware "
        "thread(s), so wall-clock scaling cannot show here; the per-query "
        "overhead above is the signal (run on a multi-core host for the "
        "scaling curve)\n",
        speedup4, cores);
  } else {
    std::printf("\n4-thread speedup: %.2fx %s\n", speedup4,
                speedup4 > 1.5 ? "(>1.5x target met)"
                               : "(below 1.5x target)");
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace viptree

int main() { return viptree::bench::Main(); }
