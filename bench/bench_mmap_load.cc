// Zero-copy arena load vs copying load: builds the MC analogue venue once,
// saves the same bundle as a format-v1 (legacy, copying) and a format-v2
// (aligned, mmap-able) snapshot, and times standing up a serving bundle
// from each. The v2 path maps the file and aliases every index buffer into
// it, so the work left is framing + small-structure decoding — the ISSUE /
// ROADMAP target is v2 >= 5x faster than v1 at MC scale 1.0.
//
// Three load configurations are timed:
//   * v1 copying load — the legacy format: full deserialization plus the
//     per-cell validation sweep (its historical default);
//   * v2 mmap load, CRC verified — the safe default: one sequential CRC
//     pass over the file (~memory bandwidth), then zero-copy decode;
//   * v2 mmap load, CRC off — the trusted-artifact fleet mode (integrity
//     verified once at build/install time, e.g. content-addressed storage):
//     pure O(touched-pages) startup, the headline zero-copy number.
// The CRC pass reads every byte, so it bounds *any* loader at checksum
// bandwidth; the trusted mode is what the >=5x target measures.
//
// Memory is measured as the *proportional* set size (PSS) growth per
// bundle while `kHeld` bundles of the same venue are held alive: the v1
// path pays a private heap copy of the whole index per bundle, while v2
// mappings share the page-cache folios of the snapshot file, so each
// additional bundle costs a fraction. (Plain RSS would overstate the v2
// side: kernels with large-folio page cache round every mapped fault up
// to a 2 MiB folio, and RSS counts shared folios once per mapping.)
//
//   VIPTREE_SCALE= multiplies the venue scale (default 1.0).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stats.h"
#include "engine/venue_bundle.h"
#include "synth/presets.h"

namespace viptree {
namespace bench {
namespace {

namespace eng = ::viptree::engine;

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  if (dir == nullptr || dir[0] == '\0') dir = "/tmp";
  return std::string(dir) + "/viptree_bench_mmap_" + name + ".vipsnap";
}

long FileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size;
}

// Current proportional set size in KiB from /proc/self/smaps_rollup
// (0 where unsupported). PSS charges shared page-cache folios 1/n-th to
// each of the n mappings sharing them — the fair per-bundle figure.
long PssKib() {
  std::FILE* f = std::fopen("/proc/self/smaps_rollup", "rb");
  if (f == nullptr) return 0;
  char line[256];
  long kib = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "Pss:", 4) == 0) {
      kib = std::atol(line + 4);
      break;
    }
  }
  std::fclose(f);
  return kib;
}

struct LoadStats {
  double best_ms = 0.0;
  long pss_per_bundle_kib = 0;
};

constexpr int kHeld = 4;

// Best-of-`reps` wall time; PSS growth is averaged over `kHeld` bundles
// held alive simultaneously (holding them defeats allocator reuse, so the
// copying path shows its real per-venue heap cost, and the mapped path
// shows how the shared file folios amortize).
LoadStats MeasureLoad(const std::string& path,
                      const eng::VenueBundle::LoadOptions& options,
                      int reps) {
  LoadStats stats;
  std::string error;
  for (int rep = 0; rep < reps; ++rep) {
    Timer timer;
    const auto loaded = eng::VenueBundle::TryLoad(path, &error, options);
    const double ms = timer.ElapsedMillis();
    if (!loaded.has_value()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      std::exit(1);
    }
    stats.best_ms = rep == 0 ? ms : std::min(stats.best_ms, ms);
  }
  const long before = PssKib();
  std::vector<eng::VenueBundle> held;
  for (int i = 0; i < kHeld; ++i) {
    auto loaded = eng::VenueBundle::TryLoad(path, &error, options);
    if (loaded.has_value()) held.push_back(std::move(*loaded));
  }
  stats.pss_per_bundle_kib = (PssKib() - before) / kHeld;
  return stats;
}

int Main() {
  const double scale =
      EnvScaleOverride() > 0.0 ? EnvScaleOverride() : 1.0;
  constexpr int kReps = 5;

  Venue venue = synth::MakeDataset(synth::Dataset::kMC, scale);
  const size_t num_partitions = venue.NumPartitions();
  const size_t num_doors = venue.NumDoors();
  Rng rng(0x5EED);
  std::vector<IndoorPoint> objects = synth::PlaceObjects(venue, 64, rng);

  Timer build_timer;
  const eng::VenueBundle bundle =
      eng::VenueBundle::Build(std::move(venue), std::move(objects));
  const double build_ms = build_timer.ElapsedMillis();

  const std::string v1_path = TempPath("v1");
  const std::string v2_path = TempPath("v2");
  io::SnapshotWriteOptions v1;
  v1.version = io::kLegacyFormatVersion;
  if (io::Status s = bundle.Save(v1_path, v1); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.error.c_str());
    return 1;
  }
  if (io::Status s = bundle.Save(v2_path); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.error.c_str());
    return 1;
  }

  std::printf(
      "MC analogue venue at scale %.2f: %zu partitions, %zu doors, "
      "build %.1f ms\n",
      scale, num_partitions, num_doors, build_ms);
  std::printf("snapshots: v1 %s, v2 %s (alignment padding)\n\n",
              HumanBytes(static_cast<uint64_t>(FileBytes(v1_path))).c_str(),
              HumanBytes(static_cast<uint64_t>(FileBytes(v2_path))).c_str());

  eng::VenueBundle::LoadOptions copying;      // v1 file: full copy + deep
  eng::VenueBundle::LoadOptions mapped;       // v2 defaults: mmap + CRC
  eng::VenueBundle::LoadOptions mapped_nocrc = mapped;
  mapped_nocrc.verify_checksums = false;

  // Measure the mapped paths before the copying path so the copying
  // loads' heap growth cannot mask the mapped paths' RSS numbers.
  const LoadStats v2_nocrc_stats = MeasureLoad(v2_path, mapped_nocrc, kReps);
  const LoadStats v2_stats = MeasureLoad(v2_path, mapped, kReps);
  const LoadStats v1_stats = MeasureLoad(v1_path, copying, kReps);

  std::printf("%-38s %10s %16s\n", "load path", "best ms", "PSS/bundle");
  std::printf("%-38s %10.2f %12ld KiB\n",
              "v1 copying load (deep validate)", v1_stats.best_ms,
              v1_stats.pss_per_bundle_kib);
  std::printf("%-38s %10.2f %12ld KiB\n", "v2 mmap load (CRC verified)",
              v2_stats.best_ms, v2_stats.pss_per_bundle_kib);
  std::printf("%-38s %10.2f %12ld KiB\n",
              "v2 mmap load (CRC off, trusted)", v2_nocrc_stats.best_ms,
              v2_nocrc_stats.pss_per_bundle_kib);

  const double verified_speedup =
      v2_stats.best_ms > 0.0 ? v1_stats.best_ms / v2_stats.best_ms : 0.0;
  const double trusted_speedup = v2_nocrc_stats.best_ms > 0.0
                                     ? v1_stats.best_ms / v2_nocrc_stats.best_ms
                                     : 0.0;
  // The >=5x acceptance target is defined at MC scale 1.0 and above; at
  // toy scales the fixed per-load costs (open, TOC, venue decode) dominate
  // both paths and the ratio is not meaningful.
  const bool at_target_scale = scale >= 1.0;
  std::printf(
      "\nv2 mmap load vs v1 copying load: %.1fx with CRC verification, "
      "%.1fx in trusted-artifact mode\n"
      "(the CRC pass reads every byte at ~memory bandwidth and bounds any "
      "loader; the trusted mode\nis the zero-copy fleet configuration the "
      ">=5x target measures) %s\n",
      verified_speedup, trusted_speedup,
      !at_target_scale
          ? "-- toy scale, target not enforced"
          : (trusted_speedup >= 5.0 ? "-- >=5x target met"
                                    : "-- below 5x target"));

  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
  return (!at_target_scale || trusted_speedup >= 5.0) ? 0 : 2;
}

}  // namespace
}  // namespace bench
}  // namespace viptree

int main() { return viptree::bench::Main(); }
