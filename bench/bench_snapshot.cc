// Snapshot persistence vs full construction: builds the MC analogue venue
// at increasing scales and compares the cost of standing up a serving
// bundle by full index construction (the paper's Fig. 8 indexing-time axis)
// against loading an immutable snapshot written once offline. This is the
// reproduction-side complement of Fig. 8: the indexing time the paper
// charges per process becomes a one-time offline cost.
//
//   VIPTREE_SCALE= multiplies the scale ladder (default 1.0).
//
// Prints build / save / load wall times, snapshot size, and the build/load
// speedup per scale; the largest scale's speedup is the headline number
// (expected well above 5x — loading replaces thousands of Dijkstra runs
// with a sequential read).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stats.h"
#include "engine/venue_bundle.h"
#include "synth/presets.h"

namespace viptree {
namespace bench {
namespace {

namespace eng = ::viptree::engine;

std::string TempSnapshotPath(int index) {
  const char* dir = std::getenv("TMPDIR");
  if (dir == nullptr || dir[0] == '\0') dir = "/tmp";
  return std::string(dir) + "/viptree_bench_snapshot_" +
         std::to_string(index) + ".vipsnap";
}

long FileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size;
}

int Main() {
  const double base =
      EnvScaleOverride() > 0.0 ? EnvScaleOverride() : 1.0;
  const std::vector<double> ladder = {0.25 * base, 0.5 * base, 1.0 * base};

  std::printf(
      "MC analogue venue; build = D2D graph + VIP-Tree + object index "
      "construction,\nload = snapshot deserialization of the same state "
      "(%zu objects each)\n\n",
      size_t{64});
  std::printf("%7s %10s %7s %11s %10s %11s %10s %9s\n", "scale", "parts",
              "doors", "build ms", "save ms", "snapshot", "load ms",
              "speedup");

  double largest_speedup = 0.0;
  for (size_t i = 0; i < ladder.size(); ++i) {
    const double scale = ladder[i];
    Venue venue = synth::MakeDataset(synth::Dataset::kMC, scale);
    const size_t num_partitions = venue.NumPartitions();
    const size_t num_doors = venue.NumDoors();
    Rng rng(0x5EED ^ i);
    std::vector<IndoorPoint> objects = synth::PlaceObjects(venue, 64, rng);

    Timer build_timer;
    const eng::VenueBundle bundle =
        eng::VenueBundle::Build(std::move(venue), std::move(objects));
    const double build_ms = build_timer.ElapsedMillis();

    const std::string path = TempSnapshotPath(static_cast<int>(i));
    Timer save_timer;
    const io::Status status = bundle.Save(path);
    const double save_ms = save_timer.ElapsedMillis();
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.error.c_str());
      return 1;
    }
    const long snapshot_bytes = FileBytes(path);

    // Best of three loads (first one also warms the page cache, matching
    // the serving scenario of re-loading a hot artifact per process).
    double load_ms = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      Timer load_timer;
      std::string error;
      const auto loaded = eng::VenueBundle::TryLoad(path, &error);
      const double ms = load_timer.ElapsedMillis();
      if (!loaded.has_value()) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
      }
      load_ms = rep == 0 ? ms : std::min(load_ms, ms);
    }
    std::remove(path.c_str());

    const double speedup = load_ms > 0.0 ? build_ms / load_ms : 0.0;
    largest_speedup = speedup;  // ladder is ascending; keep the last
    std::printf("%7.2f %10zu %7zu %11.1f %10.1f %11s %10.1f %8.1fx\n",
                scale, num_partitions, num_doors, build_ms, save_ms,
                HumanBytes(static_cast<uint64_t>(snapshot_bytes)).c_str(),
                load_ms, speedup);
  }

  std::printf(
      "\nat the largest scale, snapshot load is %.1fx faster than full "
      "index construction %s\n",
      largest_speedup,
      largest_speedup >= 5.0 ? "(>=5x target met)" : "(below 5x target)");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace viptree

int main() { return viptree::bench::Main(); }
