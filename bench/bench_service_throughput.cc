// Throughput and latency of the async serving front-end (engine/service.h).
//
// Not a paper figure — this measures the serving layer. Two phases:
//
//   1. Closed-loop parity, single venue: the bench_batch_throughput mixed
//      workload over Men-2, answered (a) through QueryEngine::RunBatch at
//      one thread and (b) through a resident one-worker Service via
//      SubmitBatch + Drain. The resident pool must not regress the
//      closed-loop path (>= parity target, modulo run-to-run noise).
//
//   2. Open-loop arrival across 1 / 2 / 4 venues: snapshots are written to
//      a temp registry, a multi-venue Service routes a paced request
//      stream (arrivals at ~70% of measured capacity, independent of
//      completions — the "requests arrive whether you are ready or not"
//      regime), and the sojourn latency (arrival -> callback) p50/p99 is
//      reported along with sustained qps and the per-venue counters.
//
//   VIPTREE_SCALE= / VIPTREE_QUERIES= shrink or grow the workload as with
//   the figure benchmarks.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "bench_common.h"
#include "engine/service.h"
#include "synth/random_venue.h"

namespace viptree {
namespace bench {
namespace {

namespace eng = ::viptree::engine;

// Closed-loop qps of SubmitBatch + Drain on a resident service.
double ServiceClosedLoopQps(eng::Service& service,
                            const std::vector<eng::Query>& queries,
                            const std::vector<std::string>& venue_ids) {
  std::vector<eng::Request> requests;
  requests.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    eng::Request request;
    request.venue_id = venue_ids[i % venue_ids.size()];
    request.query = queries[i];
    request.tag = i;
    requests.push_back(std::move(request));
  }
  const Timer wall;
  service.SubmitBatch(std::move(requests));
  service.Drain();
  const double wall_s = wall.ElapsedSeconds();
  return wall_s > 0.0 ? queries.size() / wall_s : 0.0;
}

int Main() {
  // -------------------------------------------------------------------
  // Phase 1: closed-loop parity on the Men-2 venue, one thread.
  // -------------------------------------------------------------------
  const synth::Dataset dataset = synth::Dataset::kMen2;
  DatasetBundle& data = GetDataset(dataset);
  std::printf("venue %s: %zu partitions, %zu doors\n",
              data.info.name.c_str(), data.venue.NumPartitions(),
              data.venue.NumDoors());

  const std::vector<IndoorPoint> facilities = Objects(dataset, 50);
  std::vector<std::vector<std::string>> keywords(facilities.size());
  for (size_t i = 0; i < facilities.size(); ++i) {
    keywords[i] = {i % 2 == 0 ? std::string("atm") : std::string("kiosk")};
  }
  eng::EngineOptions options;
  options.object_keywords = keywords;
  const auto bundle = std::make_shared<const eng::VenueBundle>(
      eng::VenueBundle::BuildFrom(data.venue, data.graph, facilities,
                                  options));
  const std::vector<eng::Query> workload =
      MixedEngineWorkload(data.venue, 0xBA7C4, NumQueries() * 8, true);
  std::printf("workload: %zu mixed queries\n\n", workload.size());

  const eng::QueryEngine engine(bundle);
  double batch_qps = 0.0;
  for (int round = 0; round < 3; ++round) {  // best-of-3 for stability
    const eng::BatchResult run =
        engine.RunBatch(workload, {/*num_threads=*/1});
    batch_qps = std::max(batch_qps, run.stats.queries_per_second);
  }

  double service_qps = 0.0;
  {
    eng::ServiceOptions service_options;
    service_options.num_threads = 1;
    service_options.queue_capacity = workload.size();
    eng::Service service(bundle, service_options);
    service.Start();
    const std::vector<std::string> single{std::string()};
    for (int round = 0; round < 3; ++round) {
      service_qps = std::max(
          service_qps, ServiceClosedLoopQps(service, workload, single));
    }
    service.Stop();
  }
  const double parity = batch_qps > 0.0 ? service_qps / batch_qps : 0.0;
  std::printf("closed loop, 1 thread, single venue:\n");
  std::printf("  RunBatch          %10.0f queries/s\n", batch_qps);
  std::printf("  resident Service  %10.0f queries/s  (%.2fx, %s)\n\n",
              service_qps, parity,
              parity >= 0.9 ? "parity target met"
                            : "below parity target");

  // -------------------------------------------------------------------
  // Phase 2: open-loop arrival across 1 / 2 / 4 venues via a registry.
  // -------------------------------------------------------------------
  const char* tmp = std::getenv("TMPDIR");
  if (tmp == nullptr || tmp[0] == '\0') tmp = "/tmp";
  const std::string dir = std::string(tmp) + "/viptree_bench_service_" +
                          std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  const std::string manifest = dir + "/registry.txt";

  const size_t open_loop_n = NumQueries() * 4;
  std::vector<std::string> venue_ids;
  // Per-venue query pools, generated while the venue is still in hand
  // (Venue is move-only and Build consumes it).
  std::vector<std::vector<eng::Query>> pools;
  for (uint64_t seed = 21; seed < 25; ++seed) {
    Venue venue = synth::RandomVenue(seed);
    Rng rng(seed);
    std::vector<IndoorPoint> objects = synth::PlaceObjects(venue, 16, rng);
    pools.push_back(
        MixedEngineWorkload(venue, 0x0FEED + seed, open_loop_n + 1, false));
    const eng::VenueBundle built = eng::VenueBundle::Build(
        std::move(venue), std::move(objects));
    const std::string id = "venue-" + std::to_string(seed);
    const std::string snapshot = dir + "/" + id + ".vipsnap";
    if (!built.Save(snapshot).ok() ||
        !eng::VenueRegistry::UpsertManifestEntry(manifest, id,
                                                 id + ".vipsnap")
             .ok()) {
      std::fprintf(stderr, "cannot stage bench registry in %s\n",
                   dir.c_str());
      return 1;
    }
    venue_ids.push_back(id);
  }

  std::printf("open loop (arrivals at ~70%% of measured capacity):\n");
  std::printf("%8s %10s %12s %12s %10s %10s %9s\n", "venues", "workers",
              "offered/s", "achieved/s", "p50 us", "p99 us", "expired");
  for (const size_t num_venues : {size_t{1}, size_t{2}, size_t{4}}) {
    const std::vector<std::string> ids(venue_ids.begin(),
                                       venue_ids.begin() + num_venues);
    // Round-robin mixed workload over the participating venues.
    const size_t n = open_loop_n;
    std::vector<eng::Query> queries;
    queries.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      queries.push_back(pools[i % num_venues][i / num_venues]);
    }

    std::string error;
    std::optional<eng::VenueRegistry> registry =
        eng::VenueRegistry::Open(manifest, &error);
    if (!registry.has_value()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    eng::ServiceOptions service_options;
    service_options.num_threads = 2;
    service_options.queue_capacity = n;
    eng::Service service(std::move(*registry), service_options);
    service.Start();

    // Measure capacity closed-loop first, then pace arrivals at 70%.
    const double capacity = ServiceClosedLoopQps(service, queries, ids);
    const double rate = std::max(1000.0, capacity * 0.7);
    const auto gap = std::chrono::duration_cast<eng::ServiceClock::duration>(
        std::chrono::duration<double>(1.0 / rate));

    std::mutex mu;
    std::vector<double> sojourn_micros;
    sojourn_micros.reserve(n);
    const eng::ServiceClock::time_point t0 = eng::ServiceClock::now();
    eng::ServiceClock::time_point arrival = t0;
    for (size_t i = 0; i < n; ++i) {
      std::this_thread::sleep_until(arrival);
      const eng::ServiceClock::time_point sent = eng::ServiceClock::now();
      eng::Request request;
      request.venue_id = ids[i % ids.size()];
      request.query = queries[i];
      request.tag = i;
      service.Submit(std::move(request),
                     [&mu, &sojourn_micros, sent](const eng::Response& r) {
                       if (!r.ok()) return;
                       const double micros =
                           std::chrono::duration<double, std::micro>(
                               eng::ServiceClock::now() - sent)
                               .count();
                       std::lock_guard<std::mutex> lock(mu);
                       sojourn_micros.push_back(micros);
                     });
      arrival += gap;
    }
    service.Drain();
    const double elapsed_s =
        std::chrono::duration<double>(eng::ServiceClock::now() - t0).count();
    const eng::ServiceStats stats = service.Stats();
    const Summary sojourn = Summarize(sojourn_micros);
    std::printf("%8zu %10zu %12.0f %12.0f %10.1f %10.1f %9llu\n",
                num_venues, stats.num_threads, rate,
                elapsed_s > 0.0 ? n / elapsed_s : 0.0, sojourn.p50,
                sojourn.p99,
                static_cast<unsigned long long>(stats.expired));
    service.Stop();
  }

  for (const std::string& id : venue_ids) {
    std::remove((dir + "/" + id + ".vipsnap").c_str());
  }
  std::remove(manifest.c_str());
  ::rmdir(dir.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace viptree

int main() { return viptree::bench::Main(); }
