// What does the network tier cost? The same mixed workload is answered
// three ways — in-process engine::Service, a loopback net::ShardServer
// through net::Client, and a net::Router fronting two shards — and each
// tier reports:
//
//   1. Closed-loop serial round trips: per-request p50/p99 (the loopback
//      overhead, read directly against the in-process row) and the serial
//      request rate.
//   2. Closed-loop pipelined throughput: a 64-deep window of in-flight
//      requests (SubmitBatch+Drain for the in-process tier).
//   3. Open-loop sojourn: arrivals paced at ~70% of the tier's measured
//      pipelined capacity, independent of completions; sojourn latency
//      (send -> response) p50/p99 and the achieved rate.
//
// VIPTREE_SCALE= / VIPTREE_QUERIES= shrink or grow the workload as with
// the figure benchmarks.

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/stats.h"
#include "engine/service.h"
#include "engine/venue_registry.h"
#include "net/client.h"
#include "net/router.h"
#include "net/shard_server.h"
#include "synth/random_venue.h"

namespace viptree {
namespace bench {
namespace {

namespace eng = ::viptree::engine;

constexpr size_t kPipelineWindow = 64;

struct TierReport {
  Summary serial_micros;    // closed-loop round-trip latency
  double serial_rps = 0.0;  // closed-loop serial request rate
  double pipelined_rps = 0.0;
  Summary sojourn_micros;  // open-loop send -> response latency
  double offered_rps = 0.0;
  double achieved_rps = 0.0;
  size_t answered = 0;
};

// ---------------------------------------------------------------------------
// In-process tier: the engine::Service the network layers wrap.
// ---------------------------------------------------------------------------

TierReport RunInProcess(eng::Service& service,
                        const std::vector<eng::Request>& requests) {
  TierReport report;

  // Serial round trips.
  {
    std::vector<double> micros;
    micros.reserve(requests.size());
    const Timer wall;
    for (const eng::Request& request : requests) {
      eng::Request copy = request;
      const Timer one;
      eng::Ticket ticket = service.Submit(std::move(copy));
      ticket.Wait();
      micros.push_back(one.ElapsedMicros());
    }
    report.serial_micros = Summarize(micros);
    const double s = wall.ElapsedSeconds();
    report.serial_rps = s > 0.0 ? requests.size() / s : 0.0;
  }

  // Pipelined: the batch path.
  {
    std::vector<eng::Request> batch = requests;
    const Timer wall;
    service.SubmitBatch(std::move(batch));
    service.Drain();
    const double s = wall.ElapsedSeconds();
    report.pipelined_rps = s > 0.0 ? requests.size() / s : 0.0;
  }

  // Open loop at ~70% of pipelined capacity.
  {
    const double rate = std::max(500.0, report.pipelined_rps * 0.7);
    const auto gap = std::chrono::duration_cast<eng::ServiceClock::duration>(
        std::chrono::duration<double>(1.0 / rate));
    std::mutex mu;
    std::vector<double> sojourn;
    sojourn.reserve(requests.size());
    const Timer wall;
    eng::ServiceClock::time_point arrival = eng::ServiceClock::now();
    for (const eng::Request& request : requests) {
      std::this_thread::sleep_until(arrival);
      const eng::ServiceClock::time_point sent = eng::ServiceClock::now();
      eng::Request copy = request;
      service.Submit(std::move(copy), [&mu, &sojourn, sent](
                                          const eng::Response& response) {
        if (!response.ok()) return;
        const double micros = std::chrono::duration<double, std::micro>(
                                  eng::ServiceClock::now() - sent)
                                  .count();
        std::lock_guard<std::mutex> lock(mu);
        sojourn.push_back(micros);
      });
      arrival += gap;
    }
    service.Drain();
    const double s = wall.ElapsedSeconds();
    report.sojourn_micros = Summarize(sojourn);
    report.offered_rps = rate;
    report.achieved_rps = s > 0.0 ? requests.size() / s : 0.0;
    report.answered = sojourn.size();
  }
  return report;
}

// ---------------------------------------------------------------------------
// Wire tiers: one blocking client against a shard or router endpoint.
// ---------------------------------------------------------------------------

std::unique_ptr<net::Client> MustConnect(const std::string& endpoint) {
  std::string error;
  std::unique_ptr<net::Client> client = net::Client::Connect(endpoint, &error);
  if (client == nullptr) {
    std::fprintf(stderr, "connect %s: %s\n", endpoint.c_str(), error.c_str());
    std::exit(1);
  }
  return client;
}

TierReport RunOverWire(const std::string& endpoint,
                       const std::vector<eng::Request>& requests) {
  TierReport report;
  std::vector<net::WireRequest> wire;
  wire.reserve(requests.size());
  for (const eng::Request& request : requests) {
    wire.push_back(net::WireRequest::FromRequest(request, 0.0));
  }

  // Serial round trips (Call = send + blocking receive).
  {
    std::unique_ptr<net::Client> client = MustConnect(endpoint);
    std::vector<double> micros;
    micros.reserve(wire.size());
    const Timer wall;
    for (const net::WireRequest& request : wire) {
      net::WireResponse response;
      const Timer one;
      if (!client->Call(request, &response).ok()) {
        std::fprintf(stderr, "round trip failed against %s\n",
                     endpoint.c_str());
        std::exit(1);
      }
      micros.push_back(one.ElapsedMicros());
    }
    report.serial_micros = Summarize(micros);
    const double s = wall.ElapsedSeconds();
    report.serial_rps = s > 0.0 ? wire.size() / s : 0.0;
  }

  // Pipelined: keep a 64-deep window in flight on one connection.
  {
    std::unique_ptr<net::Client> client = MustConnect(endpoint);
    size_t sent = 0, done = 0;
    const Timer wall;
    while (done < wire.size()) {
      while (sent < wire.size() && sent - done < kPipelineWindow) {
        if (!client->Send(wire[sent], sent + 1).ok()) std::exit(1);
        ++sent;
      }
      net::WireResponse response;
      uint64_t tag = 0;
      if (!client->Receive(&response, &tag, 30000.0).ok()) {
        std::fprintf(stderr, "pipelined receive failed against %s\n",
                     endpoint.c_str());
        std::exit(1);
      }
      ++done;
    }
    const double s = wall.ElapsedSeconds();
    report.pipelined_rps = s > 0.0 ? wire.size() / s : 0.0;
  }

  // Open loop: sends paced at ~70% of pipelined capacity; between
  // arrivals the driver drains whatever responses are ready (a blocking
  // client can still be an open-loop driver — the receive timeout is the
  // time until the next scheduled send).
  {
    std::unique_ptr<net::Client> client = MustConnect(endpoint);
    const double rate = std::max(500.0, report.pipelined_rps * 0.7);
    const auto gap = std::chrono::duration_cast<eng::ServiceClock::duration>(
        std::chrono::duration<double>(1.0 / rate));
    std::vector<eng::ServiceClock::time_point> sent_at(wire.size());
    std::vector<double> sojourn;
    sojourn.reserve(wire.size());
    const Timer wall;
    eng::ServiceClock::time_point arrival = eng::ServiceClock::now();
    size_t received = 0;
    const auto record = [&](uint64_t tag) {
      const double micros = std::chrono::duration<double, std::micro>(
                                eng::ServiceClock::now() - sent_at[tag - 1])
                                .count();
      sojourn.push_back(micros);
      ++received;
    };
    for (size_t i = 0; i < wire.size(); ++i) {
      std::this_thread::sleep_until(arrival);
      sent_at[i] = eng::ServiceClock::now();
      if (!client->Send(wire[i], i + 1).ok()) std::exit(1);
      arrival += gap;
      while (true) {
        const double left_ms =
            std::chrono::duration<double, std::milli>(
                arrival - eng::ServiceClock::now())
                .count();
        if (left_ms < 0.05) break;
        net::WireResponse response;
        uint64_t tag = 0;
        if (!client->Receive(&response, &tag, left_ms).ok()) break;
        record(tag);
      }
    }
    while (received < wire.size()) {
      net::WireResponse response;
      uint64_t tag = 0;
      if (!client->Receive(&response, &tag, 30000.0).ok()) break;
      record(tag);
    }
    const double s = wall.ElapsedSeconds();
    report.sojourn_micros = Summarize(sojourn);
    report.offered_rps = rate;
    report.achieved_rps = s > 0.0 ? received / s : 0.0;
    report.answered = received;
  }
  return report;
}

void PrintTier(const char* name, const TierReport& r) {
  std::printf("%-12s %10.1f %10.1f %9.0f %12.0f %10.1f %10.1f %10.0f\n",
              name, r.serial_micros.p50, r.serial_micros.p99, r.serial_rps,
              r.pipelined_rps, r.sojourn_micros.p50, r.sojourn_micros.p99,
              r.achieved_rps);
}

int Main() {
  // Stage two venues behind a manifest — every tier (and every shard)
  // opens its own registry, so each starts from identical state.
  const char* tmp = std::getenv("TMPDIR");
  if (tmp == nullptr || tmp[0] == '\0') tmp = "/tmp";
  const std::string dir = std::string(tmp) + "/viptree_bench_net_" +
                          std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  const std::string manifest = dir + "/registry.txt";

  const size_t n = NumQueries() * 2;
  std::vector<std::string> venue_ids;
  std::vector<std::vector<eng::Query>> pools;
  for (const uint64_t seed : {uint64_t{40}, uint64_t{42}}) {
    Venue venue = synth::RandomVenue(seed);
    Rng rng(seed);
    std::vector<IndoorPoint> objects = synth::PlaceObjects(venue, 16, rng);
    pools.push_back(MixedEngineWorkload(venue, 0xBEEF0 + seed, n, false));
    const eng::VenueBundle bundle =
        eng::VenueBundle::Build(std::move(venue), std::move(objects));
    const std::string id = "venue-" + std::to_string(seed);
    if (!bundle.Save(dir + "/" + id + ".vipsnap").ok() ||
        !eng::VenueRegistry::UpsertManifestEntry(manifest, id,
                                                 id + ".vipsnap")
             .ok()) {
      std::fprintf(stderr, "cannot stage bench registry in %s\n", dir.c_str());
      return 1;
    }
    venue_ids.push_back(id);
  }

  // Round-robin the venues so the router tier genuinely splits the load
  // (venue-40 and venue-42 rendezvous-hash to different shards).
  std::vector<eng::Request> requests;
  requests.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    eng::Request request;
    request.venue_id = venue_ids[i % venue_ids.size()];
    request.query = pools[i % venue_ids.size()][i / venue_ids.size()];
    requests.push_back(std::move(request));
  }
  std::printf("workload: %zu mixed queries over %zu venues\n\n", n,
              venue_ids.size());

  const auto open_registry = [&]() {
    std::string error;
    std::optional<eng::VenueRegistry> registry =
        eng::VenueRegistry::Open(manifest, &error);
    if (!registry.has_value()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      std::exit(1);
    }
    return std::move(*registry);
  };

  std::printf("%-12s %10s %10s %9s %12s %10s %10s %10s\n", "tier",
              "ser p50us", "ser p99us", "serial/s", "pipelined/s",
              "soj p50us", "soj p99us", "openloop/s");

  TierReport in_process;
  {
    eng::ServiceOptions options;
    options.num_threads = 2;
    options.queue_capacity = n;
    eng::Service service(open_registry(), options);
    service.Start();
    in_process = RunInProcess(service, requests);
    PrintTier("in-process", in_process);
    service.Stop();
  }

  TierReport direct;
  {
    net::ShardServerOptions options;
    options.service.num_threads = 2;
    options.service.queue_capacity = n;
    net::ShardServer shard(open_registry(), options);
    if (!shard.Start().ok()) {
      std::fprintf(stderr, "shard start failed\n");
      return 1;
    }
    direct = RunOverWire(":" + std::to_string(shard.port()), requests);
    PrintTier("shard", direct);
    shard.Stop();
  }

  TierReport routed;
  {
    net::ShardServerOptions options;
    options.service.num_threads = 2;
    options.service.queue_capacity = n;
    net::ShardServer shard_a(open_registry(), options);
    net::ShardServer shard_b(open_registry(), options);
    if (!shard_a.Start().ok() || !shard_b.Start().ok()) {
      std::fprintf(stderr, "shard start failed\n");
      return 1;
    }
    net::Router router({"127.0.0.1:" + std::to_string(shard_a.port()),
                        "127.0.0.1:" + std::to_string(shard_b.port())},
                       venue_ids, {});
    if (!router.Start().ok()) {
      std::fprintf(stderr, "router start failed\n");
      return 1;
    }
    routed = RunOverWire(":" + std::to_string(router.port()), requests);
    PrintTier("router", routed);
    router.Stop();
    shard_a.Stop();
    shard_b.Stop();
  }

  std::printf("\nloopback overhead (serial p50 vs in-process): shard +%.1f "
              "us, router +%.1f us\n",
              direct.serial_micros.p50 - in_process.serial_micros.p50,
              routed.serial_micros.p50 - in_process.serial_micros.p50);

  for (const std::string& id : venue_ids) {
    std::remove((dir + "/" + id + ".vipsnap").c_str());
  }
  std::remove(manifest.c_str());
  ::rmdir(dir.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace viptree

int main() { return viptree::bench::Main(); }
