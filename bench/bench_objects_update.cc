// Cost of live object updates (core/live_objects.h) and their effect on
// query latency.
//
// Not a paper figure — VIP-Tree's object index is static in the paper;
// this measures the epoch-published mutable layer added on top. Three
// phases:
//
//   1. Publish cost: single-move ApplyDelta publishes on the Men-2
//      analogue, split into overlay patches (below the merge watermark)
//      and merge rebuilds (overlay folded into a fresh packed CSR), with
//      a SetObjects full replacement for comparison — the "patch vs
//      rebuild" gap is the point of the overlay.
//   2. Watermark sweep: mean publish cost at merge watermarks 8..256 —
//      small watermarks rebuild often, large ones tax every query with
//      more overlay distance evaluations.
//   3. Query p99 under churn: reader threads run a closed kNN loop over a
//      shared bundle, quiescent vs with a writer publishing moves at full
//      rate; reports reader p50/p99 both ways and the sustained update
//      rate.
//
//   VIPTREE_SCALE= / VIPTREE_QUERIES= shrink or grow the workload as with
//   the figure benchmarks.

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/live_objects.h"
#include "engine/venue_bundle.h"

namespace viptree {
namespace bench {
namespace {

namespace eng = ::viptree::engine;

constexpr size_t kNumObjects = 200;

// One single-move delta against a random object.
ObjectDelta RandomMove(const Venue& venue, size_t num_objects, Rng& rng) {
  ObjectDelta delta;
  delta.moves.push_back(
      {static_cast<ObjectId>(rng.UniformIndex(num_objects)),
       synth::RandomIndoorPoint(venue, rng)});
  return delta;
}

struct PublishCosts {
  Summary patch;  // overlay-patch publishes
  Summary merge;  // watermark-triggered rebuild publishes
};

PublishCosts MeasurePublishes(LiveObjectIndex& live, const Venue& venue,
                              size_t publishes, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> patch_micros;
  std::vector<double> merge_micros;
  for (size_t i = 0; i < publishes; ++i) {
    const ObjectDelta delta = RandomMove(venue, kNumObjects, rng);
    const Timer timer;
    const std::optional<std::string> error = live.ApplyDelta(delta);
    const double micros = timer.ElapsedMicros();
    if (error.has_value()) {
      std::fprintf(stderr, "publish failed: %s\n", error->c_str());
      continue;
    }
    // A publish that left the overlay empty folded it into the CSR.
    if (live.Acquire()->overlay.empty()) {
      merge_micros.push_back(micros);
    } else {
      patch_micros.push_back(micros);
    }
  }
  return {Summarize(patch_micros), Summarize(merge_micros)};
}

int Main() {
  const synth::Dataset dataset = synth::Dataset::kMen2;
  DatasetBundle& data = GetDataset(dataset);
  std::printf("venue %s: %zu partitions, %zu doors, %zu objects\n",
              data.info.name.c_str(), data.venue.NumPartitions(),
              data.venue.NumDoors(), kNumObjects);

  const std::vector<IndoorPoint> objects = Objects(dataset, kNumObjects);

  // -------------------------------------------------------------------
  // Phase 1: patch vs merge vs full replacement, default watermark.
  // -------------------------------------------------------------------
  const auto bundle = std::make_shared<const eng::VenueBundle>(
      eng::VenueBundle::BuildFrom(data.venue, data.graph, objects));
  LiveObjectIndex& live = bundle->live_objects();

  const size_t publishes = 20 * NumQueries() / 5;
  const PublishCosts costs =
      MeasurePublishes(live, data.venue, publishes, 0xFADE);
  std::printf("\npublish cost over %zu single-move deltas (watermark %zu):\n",
              publishes, LiveObjectIndex::Options().merge_watermark);
  std::printf(
      "  overlay patch  %7zu publishes  mean %8.1f us  p99 %8.1f us\n",
      costs.patch.count, costs.patch.mean, costs.patch.p99);
  std::printf(
      "  merge rebuild  %7zu publishes  mean %8.1f us  p99 %8.1f us\n",
      costs.merge.count, costs.merge.mean, costs.merge.p99);

  {
    std::vector<double> replace_micros;
    Rng rng(0xF11);
    for (int i = 0; i < 20; ++i) {
      std::vector<IndoorPoint> replacement = objects;
      for (IndoorPoint& p : replacement) {
        p = synth::RandomIndoorPoint(data.venue, rng);
      }
      const Timer timer;
      live.SetObjects(std::move(replacement));
      replace_micros.push_back(timer.ElapsedMicros());
    }
    const Summary s = Summarize(replace_micros);
    std::printf(
        "  SetObjects     %7zu publishes  mean %8.1f us  p99 %8.1f us\n",
        s.count, s.mean, s.p99);
  }

  // -------------------------------------------------------------------
  // Phase 2: watermark sweep.
  // -------------------------------------------------------------------
  std::printf("\nwatermark sweep (%zu single-move publishes each):\n",
              publishes);
  for (const size_t watermark : {size_t{8}, size_t{32}, size_t{64},
                                 size_t{128}, size_t{256}}) {
    LiveObjectIndex::Options options;
    options.merge_watermark = watermark;
    LiveObjectIndex swept(bundle->tree().base(), objects, {}, options);
    const PublishCosts swept_costs =
        MeasurePublishes(swept, data.venue, publishes, 0xFADE);
    const size_t total = swept_costs.patch.count + swept_costs.merge.count;
    const double mean_all =
        total > 0 ? (swept_costs.patch.mean * swept_costs.patch.count +
                     swept_costs.merge.mean * swept_costs.merge.count) /
                        total
                  : 0.0;
    std::printf(
        "  watermark %4zu: mean %8.1f us/publish, %5zu merges, "
        "merge p99 %8.1f us\n",
        watermark, mean_all, swept_costs.merge.count,
        swept_costs.merge.p99);
  }

  // -------------------------------------------------------------------
  // Phase 2b: adaptive watermark under skewed query/update mixes. The
  // same publish stream, but with Acquire() reads interleaved at a fixed
  // ratio so the adaptive heuristic sees a workload: query-heavy traffic
  // should pull the effective watermark toward min (merge eagerly, keep
  // the overlay off the read path), update-heavy toward max (batch more
  // moves per CSR rebuild).
  // -------------------------------------------------------------------
  {
    const LiveObjectIndex::Options defaults;
    std::printf(
        "\nadaptive watermark (base %zu, clamp [%zu, %zu], "
        "%zu single-move publishes each):\n",
        defaults.merge_watermark, defaults.min_watermark,
        defaults.max_watermark, publishes);
    for (const double queries_per_update : {50.0, 1.0, 0.02}) {
      LiveObjectIndex::Options options;
      options.adaptive_watermark = true;
      LiveObjectIndex adaptive(bundle->tree().base(), objects, {}, options);
      Rng rng(0xADA7);
      std::vector<double> micros;
      // Acquire() is the query-counter tick, so the mix is driven purely
      // by interleaving reads — no inspection reads that would skew it.
      double read_debt = 0.0;
      for (size_t i = 0; i < publishes; ++i) {
        read_debt += queries_per_update;
        while (read_debt >= 1.0) {
          (void)adaptive.Acquire();
          read_debt -= 1.0;
        }
        const ObjectDelta delta = RandomMove(data.venue, kNumObjects, rng);
        const Timer timer;
        if (adaptive.ApplyDelta(delta).has_value()) continue;
        micros.push_back(timer.ElapsedMicros());
      }
      const Summary s = Summarize(micros);
      std::printf(
          "  q:u %6.2f -> effective watermark %4zu, mean %6.1f us/publish\n",
          queries_per_update, adaptive.EffectiveMergeWatermark(), s.mean);
    }
  }

  // -------------------------------------------------------------------
  // Phase 3: reader latency, quiescent vs full-rate churn.
  // -------------------------------------------------------------------
  const size_t num_readers = 2;
  const size_t reads_per_thread = 4 * NumQueries();
  for (const bool churn : {false, true}) {
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> published{0};
    std::thread writer;
    if (churn) {
      writer = std::thread([&] {
        Rng rng(0xC0FFEE);
        while (!stop.load(std::memory_order_acquire)) {
          if (!bundle->live_objects()
                   .ApplyDelta(RandomMove(data.venue, kNumObjects, rng))
                   .has_value()) {
            published.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }

    std::vector<std::vector<double>> latencies(num_readers);
    std::vector<std::thread> readers;
    const Timer wall;
    for (size_t r = 0; r < num_readers; ++r) {
      readers.emplace_back([&, r] {
        const eng::QueryEngine engine(bundle);
        Rng rng(0x5EED + r);
        latencies[r].reserve(reads_per_thread);
        for (size_t i = 0; i < reads_per_thread; ++i) {
          const eng::Query query = eng::Query::Knn(
              synth::RandomIndoorPoint(data.venue, rng), 5);
          const Timer timer;
          const eng::Result result = engine.Run(query);
          latencies[r].push_back(timer.ElapsedMicros());
          if (result.objects.empty()) std::abort();  // impossible
        }
      });
    }
    for (std::thread& t : readers) t.join();
    const double wall_s = wall.ElapsedSeconds();
    stop.store(true, std::memory_order_release);
    if (writer.joinable()) writer.join();

    std::vector<double> all;
    for (const std::vector<double>& per_thread : latencies) {
      all.insert(all.end(), per_thread.begin(), per_thread.end());
    }
    const Summary s = Summarize(all);
    std::printf("\nkNN x%zu readers, %s: p50 %7.1f us  p99 %7.1f us  "
                "(%.0f reads/s",
                num_readers, churn ? "writer at full rate" : "quiescent",
                s.p50, s.p99, wall_s > 0.0 ? all.size() / wall_s : 0.0);
    if (churn) {
      std::printf(", %.0f updates/s",
                  wall_s > 0.0 ? published.load() / wall_s : 0.0);
    }
    std::printf(")\n");
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace viptree

int main() { return viptree::bench::Main(); }
