// Table 1: storage and computational complexity comparison. This bench
// measures the quantities the formulas are written in (rho = avg access
// doors, f = avg fanout, M = #leaves, alpha = avg superior doors) for every
// venue, and demonstrates the key complexity separation: IP-Tree shortest
// distance cost grows with the tree height O(rho^2 log_f M) while VIP-Tree
// stays flat at O(rho^2) (and DistMx at O(rho^2) with quadratic storage).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "core/distance_query.h"
#include "core/vip_tree.h"

namespace viptree {
namespace bench {
namespace {

void PrintMeasuredParameters() {
  std::printf("\n=== Table 1 parameters measured per venue ===\n");
  std::printf("%-6s | %8s %8s %8s %8s %8s %8s | %12s %12s\n", "venue", "rho",
              "max_rho", "f", "M", "alpha", "height", "IP_MB", "VIP_MB");
  for (synth::Dataset d : AllBenchDatasets()) {
    DatasetBundle& bundle = GetDataset(d);
    IPTree tree = IPTree::Build(bundle.venue, bundle.graph);
    const IPTree::Stats stats = tree.ComputeStats();
    VIPTree vip = VIPTree::Extend(std::move(tree));
    std::printf(
        "%-6s | %8.2f %8zu %8.2f %8zu %8.2f %8d | %12.2f %12.2f\n",
        bundle.info.name.c_str(), stats.avg_access_doors,
        stats.max_access_doors, stats.avg_children, stats.num_leaves,
        stats.avg_superior_doors, stats.height,
        static_cast<double>(stats.memory_bytes) / (1024.0 * 1024.0),
        static_cast<double>(vip.MemoryBytes()) / (1024.0 * 1024.0));
  }
  std::printf(
      "(paper: rho and alpha below 4 on all real venues, max around 8;\n"
      " VIP storage = IP storage + O(rho D log_f M) materialization)\n\n");
}

void BM_IpDistance(benchmark::State& state, synth::Dataset dataset) {
  QueryEngine& engine = GetEngine(dataset, EngineKind::kIpTree);
  const auto pairs = QueryPairs(dataset, NumQueries());
  size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(engine.Distance(s, t));
  }
}

void BM_VipDistance(benchmark::State& state, synth::Dataset dataset) {
  QueryEngine& engine = GetEngine(dataset, EngineKind::kVipTree);
  const auto pairs = QueryPairs(dataset, NumQueries());
  size_t i = 0;
  for (auto _ : state) {
    const auto& [s, t] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(engine.Distance(s, t));
  }
}

}  // namespace
}  // namespace bench
}  // namespace viptree

int main(int argc, char** argv) {
  using namespace viptree;
  using namespace viptree::bench;
  PrintMeasuredParameters();
  std::printf(
      "=== Table 1 behaviour: SD cost vs venue size (IP grows with height, "
      "VIP flat) ===\n");
  for (synth::Dataset d : AllBenchDatasets()) {
    benchmark::RegisterBenchmark(
        ("Table1/SD-IP/" + synth::InfoFor(d).name).c_str(),
        [d](benchmark::State& state) { BM_IpDistance(state, d); })
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        ("Table1/SD-VIP/" + synth::InfoFor(d).name).c_str(),
        [d](benchmark::State& state) { BM_VipDistance(state, d); })
        ->Unit(benchmark::kMicrosecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
