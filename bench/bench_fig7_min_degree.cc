// Fig. 7: effect of the minimum degree t on the VIP-Tree (Clayton campus
// analogue): (a) construction memory and indexing time, (b) shortest
// distance and kNN query time. The paper's finding: construction cost
// grows with t, SD time is flat (O(rho^2), height-independent), kNN grows.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/distance_query.h"
#include "core/knn_query.h"
#include "core/object_index.h"
#include "core/vip_tree.h"

namespace viptree {
namespace bench {
namespace {

constexpr synth::Dataset kDataset = synth::Dataset::kCL;

VIPTree& TreeForDegree(int t) {
  static std::map<int, std::unique_ptr<VIPTree>>* cache =
      new std::map<int, std::unique_ptr<VIPTree>>();
  auto it = cache->find(t);
  if (it == cache->end()) {
    DatasetBundle& bundle = GetDataset(kDataset);
    it = cache
             ->emplace(t, std::make_unique<VIPTree>(VIPTree::Build(
                              bundle.venue, bundle.graph, {.min_degree = t})))
             .first;
  }
  return *it->second;
}

void BM_Construct(benchmark::State& state, int t) {
  DatasetBundle& bundle = GetDataset(kDataset);
  for (auto _ : state) {
    VIPTree tree = VIPTree::Build(bundle.venue, bundle.graph,
                                  {.min_degree = t});
    state.counters["memory_MB"] = benchmark::Counter(
        static_cast<double>(tree.MemoryBytes()) / (1024.0 * 1024.0));
    state.counters["height"] =
        benchmark::Counter(static_cast<double>(tree.base().height()));
  }
}

void BM_ShortestDistance(benchmark::State& state, int t) {
  VIPTree& tree = TreeForDegree(t);
  VIPDistanceQuery query(tree);
  const auto pairs = QueryPairs(kDataset, NumQueries());
  size_t i = 0;
  for (auto _ : state) {
    const auto& [s, tt] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(query.Distance(s, tt));
  }
}

void BM_Knn(benchmark::State& state, int t) {
  VIPTree& tree = TreeForDegree(t);
  const ObjectIndex index(tree.base(), Objects(kDataset, 50));
  KnnQuery knn(tree.base(), index);
  const auto points = QueryPoints(kDataset, NumQueries());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn.Knn(points[i++ % points.size()], 5));
  }
}

}  // namespace
}  // namespace bench
}  // namespace viptree

int main(int argc, char** argv) {
  using namespace viptree;
  using namespace viptree::bench;
  std::printf(
      "=== Fig. 7: effect of minimum degree t on VIP-Tree (CL analogue) "
      "===\n");
  for (int t : {2, 10, 20, 60, 100}) {
    benchmark::RegisterBenchmark(
        ("Fig7a/Construct/t=" + std::to_string(t)).c_str(),
        [t](benchmark::State& state) { BM_Construct(state, t); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        ("Fig7b/SD/t=" + std::to_string(t)).c_str(),
        [t](benchmark::State& state) { BM_ShortestDistance(state, t); })
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        ("Fig7b/kNN/t=" + std::to_string(t)).c_str(),
        [t](benchmark::State& state) { BM_Knn(state, t); })
        ->Unit(benchmark::kMicrosecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
