// City-scale read-path benchmark, in three parts:
//
//   1. Kernel microbenches — the common/kernels.h row scans (min-plus leaf
//      scan, gather-based ascent step, row-min reduction, radius filter)
//      timed scalar vs dispatched, printing ns/element and the speedup.
//      On hardware without AVX2 both columns report the scalar path.
//   2. Query sweep MC 1.0 → City — distance / kNN / range latency p50/p99
//      through engine::QueryEngine at growing venue scale, with the City
//      tier (synth/presets.h) carrying an object set that reaches ~10^6 at
//      VIPTREE_SCALE=1.0.
//   3. Bounded-RSS demo — the largest swept venue saved as a v2 snapshot
//      and served through a VenueRegistry configured with
//      MadvisePolicy::kDontneedOnRelease: PSS is sampled after querying
//      (pages faulted in) and after eviction (pages returned to the OS
//      while the bundle reference is still alive).
//
// Env knobs (bench_common.h): VIPTREE_SCALE multiplies venue scale
// (default: MC/MC-2 at 1.0, City at 0.05 — set 1.0 for the full city),
// VIPTREE_QUERIES sets the per-type query count (default 500).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/kernels.h"
#include "common/stats.h"
#include "engine/query_engine.h"
#include "engine/venue_bundle.h"
#include "engine/venue_registry.h"
#include "synth/presets.h"

namespace viptree {
namespace bench {
namespace {

namespace eng = ::viptree::engine;

// --------------------------------------------------------------------------
// Part 1: kernel microbenches.
// --------------------------------------------------------------------------

constexpr size_t kRow = 4096;  // elements per scanned row
constexpr int kKernelReps = 2000;

struct KernelInputs {
  std::vector<double> best;
  std::vector<double> row_f64;
  std::vector<float> row_f32;
  std::vector<int32_t> idx;
  std::vector<int32_t> out;

  KernelInputs() {
    best.resize(kRow);
    row_f64.resize(kRow);
    row_f32.resize(kRow);
    idx.resize(kRow);
    out.resize(kRow);
    Rng rng(0xC1717);
    for (size_t i = 0; i < kRow; ++i) {
      best[i] = rng.UniformReal(100.0, 1000.0);
      row_f64[i] = rng.UniformReal(0.0, 1000.0);
      row_f32[i] = static_cast<float>(rng.UniformReal(0.0, 1000.0));
      idx[i] = static_cast<int32_t>((i * 131) % kRow);  // scattered gather
    }
  }
};

using KernelFn = void (*)(KernelInputs&);

void RunMinPlusRow(KernelInputs& in) {
  kernels::MinPlusRow(in.best.data(), in.row_f64.data(), 3.5, kRow);
}
void RunGather(KernelInputs& in) {
  kernels::MinPlusGatherF32(in.best.data(), in.row_f32.data(), in.idx.data(),
                            3.5, kRow);
}
void RunRowMin(KernelInputs& in) {
  volatile double sink = kernels::RowMin(in.row_f64.data(), kRow);
  (void)sink;
}
void RunFilter(KernelInputs& in) {
  volatile size_t sink =
      kernels::FilterLeq(in.row_f64.data(), kRow, 500.0, in.out.data());
  (void)sink;
}

double TimeKernelNsPerElem(KernelFn fn, KernelInputs& in) {
  fn(in);  // warm
  Timer timer;
  for (int r = 0; r < kKernelReps; ++r) fn(in);
  return timer.ElapsedMicros() * 1000.0 /
         (static_cast<double>(kKernelReps) * static_cast<double>(kRow));
}

void PrintKernelMicrobenches() {
  std::printf("=== kernel microbenches (%zu-element rows) ===\n", kRow);
  std::printf("dispatch path: %s\n", kernels::ActivePathName());
  std::printf("%-22s %12s %12s %9s\n", "kernel", "scalar ns/el",
              "simd ns/el", "speedup");
  const struct {
    const char* name;
    KernelFn fn;
  } cases[] = {
      {"MinPlusRow (leaf scan)", RunMinPlusRow},
      {"MinPlusGatherF32", RunGather},
      {"RowMin", RunRowMin},
      {"FilterLeq (range)", RunFilter},
  };
  for (const auto& c : cases) {
    KernelInputs scalar_in;
    kernels::ForceScalarForTest(true);
    const double scalar_ns = TimeKernelNsPerElem(c.fn, scalar_in);
    KernelInputs simd_in;
    kernels::ForceScalarForTest(false);
    const double simd_ns = TimeKernelNsPerElem(c.fn, simd_in);
    std::printf("%-22s %12.3f %12.3f %8.2fx\n", c.name, scalar_ns, simd_ns,
                simd_ns > 0.0 ? scalar_ns / simd_ns : 0.0);
  }
  std::printf("\n");
}

// --------------------------------------------------------------------------
// Part 2: MC 1.0 -> City query sweep.
// --------------------------------------------------------------------------

struct SweepRow {
  std::string name;
  size_t partitions = 0;
  size_t doors = 0;
  size_t objects = 0;
  double build_ms = 0.0;
  Summary distance, knn, range;
};

// Local stand-in for benchmark::DoNotOptimize (this bench does not link
// google-benchmark; it prints its own tables).
template <typename T>
inline void KeepAlive(const T& value) {
  asm volatile("" : : "m"(value) : "memory");
}

Summary TimeQueries(const eng::QueryEngine& engine,
                    const std::vector<eng::Query>& queries) {
  std::vector<double> micros;
  micros.reserve(queries.size());
  for (const eng::Query& q : queries) {
    Timer timer;
    const eng::Result r = engine.Run(q);
    micros.push_back(timer.ElapsedMicros());
    KeepAlive(r);
  }
  return Summarize(micros);
}

SweepRow SweepDataset(synth::Dataset dataset) {
  SweepRow row;
  row.name = synth::InfoFor(dataset).name;
  Venue venue = synth::MakeDataset(dataset, ScaleFor(dataset));
  row.partitions = venue.NumPartitions();
  row.doors = venue.NumDoors();
  // Objects scale with the venue: ~3 per partition reaches ~10^6 at the
  // full City tier (372k rooms) without drowning the smaller venues.
  const size_t num_objects = 3 * venue.NumPartitions();
  row.objects = num_objects;
  Rng obj_rng(0xAB5EED ^ static_cast<uint64_t>(dataset));
  std::vector<IndoorPoint> objects =
      synth::PlaceObjects(venue, num_objects, obj_rng);

  Rng query_rng(0xF00D ^ static_cast<uint64_t>(dataset));
  const size_t n = NumQueries();
  std::vector<eng::Query> distance_q, knn_q, range_q;
  for (size_t i = 0; i < n; ++i) {
    const IndoorPoint a = synth::RandomIndoorPoint(venue, query_rng);
    const IndoorPoint b = synth::RandomIndoorPoint(venue, query_rng);
    distance_q.push_back(eng::Query::Distance(a, b));
    knn_q.push_back(eng::Query::Knn(a, 5));
    range_q.push_back(eng::Query::Range(a, 150.0));
  }

  Timer build_timer;
  eng::VenueBundle bundle =
      eng::VenueBundle::Build(std::move(venue), std::move(objects));
  row.build_ms = build_timer.ElapsedMillis();
  const eng::QueryEngine engine(std::move(bundle));
  row.distance = TimeQueries(engine, distance_q);
  row.knn = TimeQueries(engine, knn_q);
  row.range = TimeQueries(engine, range_q);
  return row;
}

void PrintSweep(const std::vector<SweepRow>& rows) {
  std::printf("=== MC 1.0 -> City query sweep (%zu queries/type, %s path) "
              "===\n",
              NumQueries(), kernels::ActivePathName());
  std::printf("%-6s %10s %8s %9s %10s | %9s %9s | %9s %9s | %9s %9s\n",
              "venue", "rooms", "doors", "objects", "build ms", "dist p50",
              "dist p99", "knn p50", "knn p99", "range p50", "range p99");
  for (const SweepRow& r : rows) {
    std::printf(
        "%-6s %10zu %8zu %9zu %10.0f | %9.1f %9.1f | %9.1f %9.1f | %9.1f "
        "%9.1f\n",
        r.name.c_str(), r.partitions, r.doors, r.objects, r.build_ms,
        r.distance.p50, r.distance.p99, r.knn.p50, r.knn.p99, r.range.p50,
        r.range.p99);
  }
  if (rows.size() >= 2) {
    const SweepRow& mc = rows.front();
    const SweepRow& city = rows.back();
    if (mc.distance.p99 > 0.0) {
      std::printf(
          "\ncity/%s distance p99 ratio: %.2fx (acceptance: within 2x "
          "across the sweep)\n",
          mc.name.c_str(), city.distance.p99 / mc.distance.p99);
    }
  }
  std::printf("\n");
}

// --------------------------------------------------------------------------
// Part 3: bounded RSS under MadvisePolicy::kDontneedOnRelease.
// --------------------------------------------------------------------------

// Proportional set size in KiB (see bench_mmap_load.cc for the rationale).
long PssKib() {
  std::FILE* f = std::fopen("/proc/self/smaps_rollup", "rb");
  if (f == nullptr) return 0;
  char line[256];
  long kib = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "Pss:", 4) == 0) {
      kib = std::atol(line + 4);
      break;
    }
  }
  std::fclose(f);
  return kib;
}

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  if (dir == nullptr || dir[0] == '\0') dir = "/tmp";
  return std::string(dir) + "/viptree_bench_city_" + name;
}

void PrintBoundedRssDemo(synth::Dataset dataset) {
  Venue venue = synth::MakeDataset(dataset, ScaleFor(dataset));
  Rng rng(0xE51C7);
  std::vector<IndoorPoint> objects =
      synth::PlaceObjects(venue, 3 * venue.NumPartitions(), rng);
  const eng::VenueBundle built =
      eng::VenueBundle::Build(std::move(venue), std::move(objects));
  const std::string snap = TempPath("rss.vipsnap");
  const std::string manifest = TempPath("rss.manifest");
  if (io::Status s = built.Save(snap); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.error.c_str());
    return;
  }
  if (io::Status s =
          eng::VenueRegistry::UpsertManifestEntry(manifest, "city", snap);
      !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.error.c_str());
    return;
  }

  eng::VenueBundle::LoadOptions load;
  load.madvise = io::MadvisePolicy::kDontneedOnRelease;
  std::string error;
  std::optional<eng::VenueRegistry> registry =
      eng::VenueRegistry::Open(manifest, &error, load);
  if (!registry.has_value()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return;
  }

  const long pss_before_load = PssKib();
  std::shared_ptr<const eng::VenueBundle> bundle =
      registry->Acquire("city", &error);
  if (bundle == nullptr) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return;
  }
  // Fault the index in by querying through it.
  eng::QueryEngine engine(bundle);
  Rng qrng(0xDEED);
  for (int i = 0; i < 200; ++i) {
    const IndoorPoint a = synth::RandomIndoorPoint(bundle->venue(), qrng);
    const IndoorPoint b = synth::RandomIndoorPoint(bundle->venue(), qrng);
    KeepAlive(engine.Run(eng::Query::Distance(a, b)));
  }
  const long pss_resident = PssKib();
  registry->Evict("city");  // policy => pages returned to the OS
  const long pss_evicted = PssKib();

  std::printf("=== bounded RSS under kDontneedOnRelease (%s snapshot) ===\n",
              synth::InfoFor(dataset).name.c_str());
  std::printf("PSS before load:        %8ld KiB\n", pss_before_load);
  std::printf("PSS after 200 queries:  %8ld KiB\n", pss_resident);
  std::printf("PSS after eviction:     %8ld KiB  (bundle ref still held)\n",
              pss_evicted);
  const long faulted = pss_resident - pss_before_load;
  const long dropped = pss_resident - pss_evicted;
  if (faulted > 0) {
    std::printf("eviction returned %ld of %ld KiB (%.0f%%) to the OS\n",
                dropped, faulted,
                100.0 * static_cast<double>(dropped) /
                    static_cast<double>(faulted));
  }
  std::remove(snap.c_str());
  std::remove(manifest.c_str());
}

int Main() {
  if (std::getenv("VIPTREE_FORCE_SCALAR") != nullptr) {
    std::printf("(VIPTREE_FORCE_SCALAR set: dispatch pinned to scalar)\n");
  }
  PrintKernelMicrobenches();
  std::vector<SweepRow> rows;
  for (synth::Dataset d : {synth::Dataset::kMC, synth::Dataset::kMC2,
                           synth::Dataset::kCity}) {
    rows.push_back(SweepDataset(d));
  }
  PrintSweep(rows);
  PrintBoundedRssDemo(synth::Dataset::kCity);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace viptree

int main() { return viptree::bench::Main(); }
