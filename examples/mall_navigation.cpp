// In-store navigation in a shopping centre (§1.1): "a disabled person may
// issue a query to find accessible toilets within 100 meters" and "a
// passenger may want to find the shortest path to the boarding gate".
// Demonstrates kNN, range and boolean keyword queries over facility objects
// in a Melbourne Central-like mall — served the way a mall's location
// service actually receives them: through the async engine::Service
// front-end, one Submit per shopper request, answers delivered via Ticket
// futures and streaming callbacks with a per-request deadline budget.

#include <algorithm>
#include <cstdio>
#include <mutex>

#include "engine/service.h"
#include "graph/d2d_graph.h"
#include "synth/objects.h"
#include "synth/presets.h"

using namespace viptree;

int main() {
  // The Melbourne Central analogue of Table 2.
  const Venue venue = synth::MakeDataset(synth::Dataset::kMC);
  const D2DGraph graph(venue);
  std::printf("mall: %zu partitions over 7 levels, %zu doors\n",
              venue.NumPartitions(), venue.NumDoors());

  // Facilities: washrooms, half of them wheelchair-accessible. Keyword
  // lists feed the engine's boolean kNN queries (§1.3).
  Rng rng(12);
  const std::vector<IndoorPoint> washrooms = synth::PlaceObjects(venue, 8, rng);
  engine::EngineOptions options;
  options.object_keywords.resize(washrooms.size());
  for (size_t i = 0; i < washrooms.size(); ++i) {
    options.object_keywords[i] = {"washroom"};
    if (i % 2 == 0) options.object_keywords[i].push_back("accessible");
  }

  // Stand up the serving front-end: a shared immutable bundle behind a
  // resident two-worker service (threads created once, then every shopper
  // request is a Submit).
  const auto bundle = std::make_shared<const engine::VenueBundle>(
      engine::VenueBundle::BuildFrom(venue, graph, washrooms, options));
  engine::ServiceOptions service_options;
  service_options.num_threads = 2;
  engine::Service service(bundle, service_options);
  service.Start();

  // A shopper somewhere on an upper level, with a 100 ms answer budget —
  // past that the app would have re-asked anyway.
  IndoorPoint shopper = synth::RandomIndoorPoint(venue, rng);
  std::printf("shopper is in %s (level %d)\n",
              venue.partition(shopper.partition).name.c_str(),
              venue.partition(shopper.partition).level);

  // Worker callbacks below share stdout; this mutex keeps multi-line
  // blocks whole.
  std::mutex print_mu;

  engine::Request nearest_request;
  nearest_request.query = engine::Query::Knn(shopper, 1);
  nearest_request.deadline = engine::DeadlineAfterMillis(100.0);
  engine::Ticket nearest = service.Submit(std::move(nearest_request));

  // The ticket is a future: Wait() blocks until a worker answered.
  const engine::Response& response = nearest.Wait();
  if (response.ok() && !response.result.objects.empty()) {
    const ObjectResult& hit = response.result.objects[0];
    const IndoorPoint& w = washrooms[hit.object];
    std::printf("nearest washroom: %s (level %d) at %.1f m\n",
                venue.partition(w.partition).name.c_str(),
                venue.partition(w.partition).level, hit.distance);

    // Walkable directions, streamed: the callback runs on a worker thread
    // the moment the door sequence is ready.
    engine::Request path_request;
    path_request.query = engine::Query::Path(shopper, w);
    service.Submit(std::move(path_request),
                   [&venue, &print_mu](const engine::Response& path_response) {
                     if (!path_response.ok()) return;
                     const auto& doors = path_response.result.doors;
                     int level_changes = 0;
                     for (size_t i = 0; i + 1 < doors.size(); ++i) {
                       const int la = static_cast<int>(
                           venue.door(doors[i]).position.z);
                       const int lb = static_cast<int>(
                           venue.door(doors[i + 1]).position.z);
                       if (la != lb) ++level_changes;
                     }
                     std::lock_guard<std::mutex> lock(print_mu);
                     std::printf(
                         "route crosses %zu doors with %d level change(s)\n",
                         doors.size(), level_changes);
                   });
  }

  // "accessible toilets within 100 meters": boolean-keyword kNN filtered
  // to the quoted radius, plus the plain range query for comparison —
  // submitted together, delivered as each completes.
  engine::Request accessible_request;
  accessible_request.query =
      engine::Query::BooleanKnn(shopper, 3, {"accessible"});
  service.Submit(
      std::move(accessible_request),
      [&](const engine::Response& r) {
        if (!r.ok()) return;
        auto matches = r.result.objects;
        matches.erase(std::remove_if(matches.begin(), matches.end(),
                                     [](const ObjectResult& m) {
                                       return m.distance > 100.0;
                                     }),
                      matches.end());
        std::lock_guard<std::mutex> lock(print_mu);
        std::printf("%zu accessible washroom(s) within 100 m:\n",
                    matches.size());
        for (const ObjectResult& m : matches) {
          std::printf("  %s at %.1f m\n",
                      venue.partition(washrooms[m.object].partition)
                          .name.c_str(),
                      m.distance);
        }
      });
  engine::Request range_request;
  range_request.query = engine::Query::Range(shopper, 100.0);
  service.Submit(std::move(range_request), [&](const engine::Response& r) {
    if (!r.ok()) return;
    std::lock_guard<std::mutex> lock(print_mu);
    std::printf("%zu washroom(s) of any kind within 100 m\n",
                r.result.objects.size());
  });

  // Every submitted request (and its callback) completes before Drain
  // returns; Stop joins the resident workers.
  service.Drain();
  const engine::ServiceStats stats = service.Stats();
  std::printf("service answered %zu requests (p99 %.1f us exec, "
              "%.1f us queued)\n",
              stats.num_queries, stats.latency_micros.p99,
              stats.queue_micros.p99);
  service.Stop();
  return 0;
}
