// In-store navigation in a shopping centre (§1.1): "a disabled person may
// issue a query to find accessible toilets within 100 meters" and "a
// passenger may want to find the shortest path to the boarding gate".
// Demonstrates kNN and range queries over facility objects in a Melbourne
// Central-like mall, including the paper's washroom scenario.

#include <cstdio>

#include "core/knn_query.h"
#include "core/object_index.h"
#include "core/path_query.h"
#include "core/range_query.h"
#include "core/vip_tree.h"
#include "graph/d2d_graph.h"
#include "synth/objects.h"
#include "synth/presets.h"

using namespace viptree;

int main() {
  // The Melbourne Central analogue of Table 2.
  const Venue venue = synth::MakeDataset(synth::Dataset::kMC);
  const D2DGraph graph(venue);
  const VIPTree vip = VIPTree::Build(venue, graph);
  std::printf("mall: %zu partitions over 7 levels, %zu doors\n",
              venue.NumPartitions(), venue.NumDoors());

  // Facilities: washrooms, ATMs and charging kiosks (the small object sets
  // the paper argues are the realistic kNN workload).
  Rng rng(12);
  const std::vector<IndoorPoint> washrooms = synth::PlaceObjects(venue, 8, rng);
  const ObjectIndex washroom_index(vip.base(), washrooms);
  KnnQuery nearest_washroom(vip.base(), washroom_index);
  RangeQuery washrooms_within(vip.base(), washroom_index);

  // A shopper somewhere on an upper level.
  IndoorPoint shopper = synth::RandomIndoorPoint(venue, rng);
  std::printf("shopper is in %s (level %d)\n",
              venue.partition(shopper.partition).name.c_str(),
              venue.partition(shopper.partition).level);

  const auto knn = nearest_washroom.Knn(shopper, 1);
  if (!knn.empty()) {
    const IndoorPoint& w = washrooms[knn[0].object];
    std::printf("nearest washroom: %s (level %d) at %.1f m\n",
                venue.partition(w.partition).name.c_str(),
                venue.partition(w.partition).level, knn[0].distance);
    // Walkable directions: the full door sequence.
    VIPPathQuery path_query(vip);
    const IndoorPath path = path_query.Path(shopper, w);
    std::printf("route crosses %zu doors", path.doors.size());
    int level_changes = 0;
    for (size_t i = 0; i + 1 < path.doors.size(); ++i) {
      const int la = static_cast<int>(venue.door(path.doors[i]).position.z);
      const int lb =
          static_cast<int>(venue.door(path.doors[i + 1]).position.z);
      if (la != lb) ++level_changes;
    }
    std::printf(" with %d level change(s)\n", level_changes);
  }

  // "accessible toilets within 100 meters".
  const auto accessible = washrooms_within.Range(shopper, 100.0);
  std::printf("%zu washroom(s) within 100 m:\n", accessible.size());
  for (const ObjectResult& r : accessible) {
    std::printf("  %s at %.1f m\n",
                venue.partition(washrooms[r.object].partition).name.c_str(),
                r.distance);
  }
  return 0;
}
