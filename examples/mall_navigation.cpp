// In-store navigation in a shopping centre (§1.1): "a disabled person may
// issue a query to find accessible toilets within 100 meters" and "a
// passenger may want to find the shortest path to the boarding gate".
// Demonstrates kNN, range and boolean keyword queries over facility objects
// in a Melbourne Central-like mall through the QueryEngine façade,
// including the paper's washroom scenario.

#include <algorithm>
#include <cstdio>

#include "engine/query_engine.h"
#include "graph/d2d_graph.h"
#include "synth/objects.h"
#include "synth/presets.h"

using namespace viptree;

int main() {
  // The Melbourne Central analogue of Table 2.
  const Venue venue = synth::MakeDataset(synth::Dataset::kMC);
  const D2DGraph graph(venue);
  std::printf("mall: %zu partitions over 7 levels, %zu doors\n",
              venue.NumPartitions(), venue.NumDoors());

  // Facilities: washrooms, half of them wheelchair-accessible. Keyword
  // lists feed the engine's boolean kNN queries (§1.3).
  Rng rng(12);
  const std::vector<IndoorPoint> washrooms = synth::PlaceObjects(venue, 8, rng);
  engine::EngineOptions options;
  options.object_keywords.resize(washrooms.size());
  for (size_t i = 0; i < washrooms.size(); ++i) {
    options.object_keywords[i] = {"washroom"};
    if (i % 2 == 0) options.object_keywords[i].push_back("accessible");
  }
  const engine::QueryEngine engine(venue, graph, washrooms, options);

  // A shopper somewhere on an upper level.
  IndoorPoint shopper = synth::RandomIndoorPoint(venue, rng);
  std::printf("shopper is in %s (level %d)\n",
              venue.partition(shopper.partition).name.c_str(),
              venue.partition(shopper.partition).level);

  const auto knn = engine.Run(engine::Query::Knn(shopper, 1)).objects;
  if (!knn.empty()) {
    const IndoorPoint& w = washrooms[knn[0].object];
    std::printf("nearest washroom: %s (level %d) at %.1f m\n",
                venue.partition(w.partition).name.c_str(),
                venue.partition(w.partition).level, knn[0].distance);
    // Walkable directions: the full door sequence.
    const engine::Result path = engine.Run(engine::Query::Path(shopper, w));
    std::printf("route crosses %zu doors", path.doors.size());
    int level_changes = 0;
    for (size_t i = 0; i + 1 < path.doors.size(); ++i) {
      const int la = static_cast<int>(venue.door(path.doors[i]).position.z);
      const int lb =
          static_cast<int>(venue.door(path.doors[i + 1]).position.z);
      if (la != lb) ++level_changes;
    }
    std::printf(" with %d level change(s)\n", level_changes);
  }

  // "accessible toilets within 100 meters": boolean-keyword kNN filtered to
  // the quoted radius, then the plain range query for comparison.
  auto accessible =
      engine.Run(engine::Query::BooleanKnn(shopper, 3, {"accessible"}))
          .objects;
  accessible.erase(std::remove_if(accessible.begin(), accessible.end(),
                                  [](const ObjectResult& r) {
                                    return r.distance > 100.0;
                                  }),
                   accessible.end());
  std::printf("%zu accessible washroom(s) within 100 m:\n",
              accessible.size());
  for (const ObjectResult& r : accessible) {
    std::printf("  %s at %.1f m\n",
                venue.partition(washrooms[r.object].partition).name.c_str(),
                r.distance);
  }
  const auto in_range =
      engine.Run(engine::Query::Range(shopper, 100.0)).objects;
  std::printf("%zu washroom(s) of any kind within 100 m\n", in_range.size());
  return 0;
}
