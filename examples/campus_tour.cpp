// Campus-scale queries (§1.2.1: the Clayton campus motivates the paper's
// scalability claims): builds a multi-building campus connected by outdoor
// walkways, then answers cross-building queries — "a student may issue a
// query to find the nearest photocopier in a university campus" — and
// compares IP-Tree vs VIP-Tree latency on long-range shortest paths.

#include <cstdio>

#include "common/stats.h"
#include "core/distance_query.h"
#include "core/knn_query.h"
#include "core/object_index.h"
#include "core/vip_tree.h"
#include "graph/d2d_graph.h"
#include "synth/campus_generator.h"
#include "synth/objects.h"

using namespace viptree;

int main() {
  // A 12-building campus (scaled-down Clayton analogue).
  const Venue venue =
      synth::GenerateCampus(synth::MixedCampusConfig(12, 0.4, /*seed=*/3));
  const D2DGraph graph(venue);
  std::printf("campus: %zu partitions, %zu doors, %zu D2D edges\n",
              venue.NumPartitions(), venue.NumDoors(), graph.NumEdges());

  Timer build_timer;
  const IPTree ip = IPTree::Build(venue, graph);
  const double ip_ms = build_timer.ElapsedMillis();
  build_timer.Reset();
  const VIPTree vip = VIPTree::Build(venue, graph);
  const double vip_ms = build_timer.ElapsedMillis();
  std::printf("IP-Tree built in %.1f ms (%.1f MB), VIP in %.1f ms (%.1f MB)\n",
              ip_ms, ip.MemoryBytes() / 1048576.0, vip_ms,
              vip.MemoryBytes() / 1048576.0);

  // Cross-building shortest distances: a student in building 0 heading to
  // rooms all over the campus.
  Rng rng(17);
  IndoorPoint student;
  for (PartitionId p = 0; p < (PartitionId)venue.NumPartitions(); ++p) {
    if (venue.partition(p).zone == 0 &&
        venue.partition(p).use == PartitionUse::kRoom) {
      student = IndoorPoint{p, venue.partition(p).centroid};
      break;
    }
  }
  const std::vector<IndoorPoint> targets =
      synth::RandomQueryPoints(venue, 2000, rng);

  IPDistanceQuery ip_query(ip);
  VIPDistanceQuery vip_query(vip);
  Timer timer;
  double sum_ip = 0.0;
  for (const IndoorPoint& t : targets) sum_ip += ip_query.Distance(student, t);
  const double ip_query_us = timer.ElapsedMicros() / targets.size();
  timer.Reset();
  double sum_vip = 0.0;
  for (const IndoorPoint& t : targets) {
    sum_vip += vip_query.Distance(student, t);
  }
  const double vip_query_us = timer.ElapsedMicros() / targets.size();
  std::printf(
      "avg SD query: IP-Tree %.2f us, VIP-Tree %.2f us (checksums %.0f / "
      "%.0f)\n",
      ip_query_us, vip_query_us, sum_ip, sum_vip);

  // Nearest photocopier across the campus.
  const std::vector<IndoorPoint> copiers = synth::PlaceObjects(venue, 20, rng);
  const ObjectIndex copier_index(vip.base(), copiers);
  KnnQuery knn(vip.base(), copier_index);
  const auto nearest = knn.Knn(student, 3);
  std::printf("3 nearest photocopiers from %s:\n",
              venue.partition(student.partition).name.c_str());
  for (const ObjectResult& r : nearest) {
    const Partition& p = venue.partition(copiers[r.object].partition);
    std::printf("  %s (building %d, level %d) at %.1f m\n", p.name.c_str(),
                p.zone, p.level, r.distance);
  }
  return 0;
}
