// Campus-scale queries (§1.2.1: the Clayton campus motivates the paper's
// scalability claims): builds a multi-building campus connected by outdoor
// walkways, then answers cross-building queries — "a student may issue a
// query to find the nearest photocopier in a university campus" — comparing
// IP-Tree against the VIP-Tree engine façade on long-range shortest
// distances, sequentially and as a multi-threaded batch.

#include <cstdio>

#include "common/stats.h"
#include "core/distance_query.h"
#include "core/ip_tree.h"
#include "engine/query_engine.h"
#include "graph/d2d_graph.h"
#include "synth/campus_generator.h"
#include "synth/objects.h"

using namespace viptree;

int main() {
  // A 12-building campus (scaled-down Clayton analogue).
  const Venue venue =
      synth::GenerateCampus(synth::MixedCampusConfig(12, 0.4, /*seed=*/3));
  const D2DGraph graph(venue);
  std::printf("campus: %zu partitions, %zu doors, %zu D2D edges\n",
              venue.NumPartitions(), venue.NumDoors(), graph.NumEdges());

  Rng rng(17);
  const std::vector<IndoorPoint> copiers = synth::PlaceObjects(venue, 20, rng);

  Timer build_timer;
  const IPTree ip = IPTree::Build(venue, graph);
  const double ip_ms = build_timer.ElapsedMillis();
  build_timer.Reset();
  const engine::QueryEngine engine(venue, graph, copiers);
  const double vip_ms = build_timer.ElapsedMillis();
  std::printf(
      "IP-Tree built in %.1f ms (%.1f MB), VIP engine in %.1f ms (%.1f MB)\n",
      ip_ms, ip.MemoryBytes() / 1048576.0, vip_ms,
      engine.tree().MemoryBytes() / 1048576.0);

  // Cross-building shortest distances: a student in building 0 heading to
  // rooms all over the campus.
  IndoorPoint student;
  for (PartitionId p = 0; p < (PartitionId)venue.NumPartitions(); ++p) {
    if (venue.partition(p).zone == 0 &&
        venue.partition(p).use == PartitionUse::kRoom) {
      student = IndoorPoint{p, venue.partition(p).centroid};
      break;
    }
  }
  const std::vector<IndoorPoint> targets =
      synth::RandomQueryPoints(venue, 2000, rng);
  std::vector<engine::Query> batch;
  batch.reserve(targets.size());
  for (const IndoorPoint& t : targets) {
    batch.push_back(engine::Query::Distance(student, t));
  }

  IPDistanceQuery ip_query(ip);
  Timer timer;
  double sum_ip = 0.0;
  for (const IndoorPoint& t : targets) sum_ip += ip_query.Distance(student, t);
  const double ip_query_us = timer.ElapsedMicros() / targets.size();

  const std::vector<engine::Result> seq = engine.RunSequential(batch);
  const engine::BatchStats seq_stats =
      engine::QueryEngine::Aggregate(seq, 0.0, 1);
  double sum_vip = 0.0;
  for (const engine::Result& r : seq) sum_vip += r.distance;
  std::printf(
      "avg SD query: IP-Tree %.2f us, VIP engine %.2f us (checksums %.0f / "
      "%.0f)\n",
      ip_query_us, seq_stats.latency_micros.mean, sum_ip, sum_vip);

  // The same 2000 queries as one batch over 4 worker threads.
  engine::BatchOptions batch_options;
  batch_options.num_threads = 4;
  const engine::BatchResult parallel = engine.RunBatch(batch, batch_options);
  std::printf("batched on %zu threads: %.1f ms wall, %.0f queries/s\n",
              parallel.stats.num_threads, parallel.stats.wall_millis,
              parallel.stats.queries_per_second);

  // Nearest photocopier across the campus.
  const auto nearest = engine.Run(engine::Query::Knn(student, 3)).objects;
  std::printf("3 nearest photocopiers from %s:\n",
              venue.partition(student.partition).name.c_str());
  for (const ObjectResult& r : nearest) {
    const Partition& p = venue.partition(copiers[r.object].partition);
    std::printf("  %s (building %d, level %d) at %.1f m\n", p.name.c_str(),
                p.zone, p.level, r.distance);
  }
  return 0;
}
