// Quickstart: build a small office building, index it with a VIP-Tree and
// answer the four query types of the paper (shortest distance, shortest
// path, kNN, range).
//
//   ./build/examples/quickstart

#include <cstdio>

#include "core/distance_query.h"
#include "core/knn_query.h"
#include "core/object_index.h"
#include "core/path_query.h"
#include "core/range_query.h"
#include "core/vip_tree.h"
#include "graph/d2d_graph.h"
#include "synth/building_generator.h"
#include "synth/objects.h"

using namespace viptree;

int main() {
  // 1. Model the venue: a 4-storey building with 30 rooms per floor.
  synth::BuildingConfig config;
  config.name = "demo-office";
  config.floors = 4;
  config.rooms_per_floor = 30;
  config.staircases = 2;
  config.lifts = 1;
  const Venue venue = synth::GenerateStandaloneBuilding(config, /*seed=*/7);
  std::printf("venue: %zu partitions, %zu doors\n", venue.NumPartitions(),
              venue.NumDoors());

  // 2. Derive the door-to-door graph and build the index.
  const D2DGraph graph(venue);
  const VIPTree vip = VIPTree::Build(venue, graph);
  const IPTree::Stats stats = vip.base().ComputeStats();
  std::printf(
      "VIP-Tree: %zu nodes, %zu leaves, height %d, avg access doors %.2f\n",
      stats.num_nodes, stats.num_leaves, stats.height,
      stats.avg_access_doors);

  // 3. Shortest distance and path between two points on different floors.
  Rng rng(42);
  const IndoorPoint a = synth::RandomIndoorPoint(venue, rng);
  const IndoorPoint b = synth::RandomIndoorPoint(venue, rng);
  VIPDistanceQuery distance(vip);
  std::printf("dist(%s, %s) = %.2f m\n",
              venue.partition(a.partition).name.c_str(),
              venue.partition(b.partition).name.c_str(),
              distance.Distance(a, b));

  VIPPathQuery path_query(vip);
  const IndoorPath path = path_query.Path(a, b);
  std::printf("shortest path crosses %zu doors:", path.doors.size());
  for (DoorId d : path.doors) std::printf(" d%d", d);
  std::printf("\n");

  // 4. Index some objects (printers, say) and ask for the 3 nearest plus
  // everything within 50 metres.
  const std::vector<IndoorPoint> printers = synth::PlaceObjects(venue, 8, rng);
  const ObjectIndex objects(vip.base(), printers);
  KnnQuery knn(vip.base(), objects);
  std::printf("3 nearest printers:\n");
  for (const ObjectResult& r : knn.Knn(a, 3)) {
    std::printf("  printer %d in %s at %.2f m\n", r.object,
                venue.partition(printers[r.object].partition).name.c_str(),
                r.distance);
  }
  RangeQuery range(vip.base(), objects);
  const auto in_range = range.Range(a, 50.0);
  std::printf("%zu printers within 50 m\n", in_range.size());
  return 0;
}
