// Quickstart: build a small office building, stand up the QueryEngine
// façade over a VIP-Tree, and answer the four query types of the paper
// (shortest distance, shortest path, kNN, range) — single queries through
// Run() and a concurrent batch through RunBatch(). Finishes with the
// snapshot workflow: Save() the engine's self-contained bundle, Load() it
// back (as a serving process would), and check both answer identically.
//
//   ./build/quickstart

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "engine/query_engine.h"
#include "synth/building_generator.h"
#include "synth/objects.h"

using namespace viptree;

int main() {
  // 1. Model the venue: a 4-storey building with 30 rooms per floor.
  synth::BuildingConfig config;
  config.name = "demo-office";
  config.floors = 4;
  config.rooms_per_floor = 30;
  config.staircases = 2;
  config.lifts = 1;
  Venue built_venue = synth::GenerateStandaloneBuilding(config, /*seed=*/7);
  std::printf("venue: %zu partitions, %zu doors\n",
              built_venue.NumPartitions(), built_venue.NumDoors());

  // 2. Index some objects (printers, say) and build the engine: the engine
  // takes ownership of the venue, derives the door-to-door graph, and owns
  // one VIP-Tree plus an object index behind a typed query API.
  Rng rng(42);
  const std::vector<IndoorPoint> printers =
      synth::PlaceObjects(built_venue, 8, rng);
  const engine::QueryEngine engine(std::move(built_venue), printers);
  const Venue& venue = engine.venue();
  const IPTree::Stats stats = engine.tree().base().ComputeStats();
  std::printf(
      "VIP-Tree: %zu nodes, %zu leaves, height %d, avg access doors %.2f\n",
      stats.num_nodes, stats.num_leaves, stats.height,
      stats.avg_access_doors);

  // 3. Shortest distance and path between two points on different floors.
  const IndoorPoint a = synth::RandomIndoorPoint(venue, rng);
  const IndoorPoint b = synth::RandomIndoorPoint(venue, rng);
  const engine::Result dist = engine.Run(engine::Query::Distance(a, b));
  std::printf("dist(%s, %s) = %.2f m (%.1f us, %zu tree nodes)\n",
              venue.partition(a.partition).name.c_str(),
              venue.partition(b.partition).name.c_str(), dist.distance,
              dist.latency_micros, dist.visited_nodes);

  const engine::Result path = engine.Run(engine::Query::Path(a, b));
  std::printf("shortest path crosses %zu doors:", path.doors.size());
  for (DoorId d : path.doors) std::printf(" d%d", d);
  std::printf("\n");

  // 4. The 3 nearest printers plus everything within 50 metres.
  std::printf("3 nearest printers:\n");
  for (const ObjectResult& r : engine.Run(engine::Query::Knn(a, 3)).objects) {
    std::printf("  printer %d in %s at %.2f m\n", r.object,
                venue.partition(printers[r.object].partition).name.c_str(),
                r.distance);
  }
  const engine::Result in_range = engine.Run(engine::Query::Range(a, 50.0));
  std::printf("%zu printers within 50 m\n", in_range.objects.size());

  // 5. Batch mode: fan 400 mixed queries across 4 worker threads over the
  // same read-only index.
  std::vector<engine::Query> batch;
  for (int i = 0; i < 400; ++i) {
    const IndoorPoint s = synth::RandomIndoorPoint(venue, rng);
    const IndoorPoint t = synth::RandomIndoorPoint(venue, rng);
    batch.push_back(i % 2 == 0 ? engine::Query::Distance(s, t)
                               : engine::Query::Knn(s, 3));
  }
  engine::BatchOptions batch_options;
  batch_options.num_threads = 4;
  const engine::BatchResult result = engine.RunBatch(batch, batch_options);
  std::printf(
      "batch: %zu queries on %zu threads in %.2f ms (%.0f queries/s, "
      "p95 %.1f us)\n",
      result.stats.num_queries, result.stats.num_threads,
      result.stats.wall_millis, result.stats.queries_per_second,
      result.stats.latency_micros.p95);

  // 6. Snapshot persistence: save the whole serving state, load it back
  // the way a fresh serving process would, and answer the same query.
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string snapshot_path =
      std::string(tmpdir != nullptr && tmpdir[0] != '\0' ? tmpdir : "/tmp") +
      "/quickstart.vipsnap";
  Timer snapshot_timer;
  const io::Status saved = engine.Save(snapshot_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.error.c_str());
    return 1;
  }
  std::string error;
  const std::unique_ptr<engine::QueryEngine> loaded =
      engine::QueryEngine::TryLoad(snapshot_path, &error);
  const double snapshot_ms = snapshot_timer.ElapsedMillis();
  if (loaded == nullptr) {
    std::fprintf(stderr, "load failed: %s\n", error.c_str());
    return 1;
  }
  const double reload_dist =
      loaded->Run(engine::Query::Distance(a, b)).distance;
  std::printf(
      "snapshot: saved + reloaded in %.1f ms, reloaded engine agrees: %s\n",
      snapshot_ms, reload_dist == dist.distance ? "yes" : "NO");
  std::remove(snapshot_path.c_str());
  return reload_dist == dist.distance ? 0 : 1;
}
