// Emergency evacuation: "in an emergency, an indoor LBS can guide people to
// the nearby exit doors" (§1.1). Builds a tower, picks occupants on random
// floors, and routes each of them to their nearest building exit — the
// (occupant, exit) distance matrix is evaluated as one RunBatch over the
// engine's worker pool, then each occupant gets a full door path. Compares
// against a plain Dijkstra expansion (the DistAw approach).

#include <algorithm>
#include <cstdio>

#include "baselines/dist_aware.h"
#include "common/stats.h"
#include "engine/query_engine.h"
#include "graph/d2d_graph.h"
#include "synth/building_generator.h"
#include "synth/objects.h"

using namespace viptree;

int main() {
  synth::BuildingConfig config;
  config.name = "tower";
  config.floors = 12;
  config.rooms_per_floor = 60;
  config.staircases = 3;
  config.lifts = 1;
  config.exits = 4;
  const Venue venue = synth::GenerateStandaloneBuilding(config, /*seed=*/99);
  const D2DGraph graph(venue);
  const engine::QueryEngine engine(venue, graph, /*objects=*/{});

  // Exits are the exterior doors of the venue = the access doors of the
  // tree root (exactly the paper's d1/d7/d20 situation in Fig. 1).
  const IPTree& tree = engine.tree().base();
  const std::vector<DoorId>& exits = tree.node(tree.root()).access_doors;
  std::printf("tower has %zu exits\n", exits.size());

  Rng rng(5);
  const std::vector<IndoorPoint> occupants =
      synth::RandomQueryPoints(venue, 200, rng);
  std::vector<IndoorPoint> exit_points;
  exit_points.reserve(exits.size());
  for (DoorId exit : exits) {
    exit_points.push_back(IndoorPoint{venue.door(exit).partition_a,
                                      venue.door(exit).position});
  }

  // One batch holds every (occupant, exit) distance query; the engine fans
  // it across 4 threads over the shared read-only index.
  std::vector<engine::Query> batch;
  batch.reserve(occupants.size() * exit_points.size());
  for (const IndoorPoint& person : occupants) {
    for (const IndoorPoint& exit_point : exit_points) {
      batch.push_back(engine::Query::Distance(person, exit_point));
    }
  }
  Timer timer;
  engine::BatchOptions batch_options;
  batch_options.num_threads = 4;
  const engine::BatchResult distances = engine.RunBatch(batch, batch_options);

  // Pick each occupant's nearest exit and recover the full door path.
  double total = 0.0;
  size_t total_doors = 0;
  for (size_t i = 0; i < occupants.size(); ++i) {
    double best = kInfDistance;
    size_t best_exit = 0;
    for (size_t e = 0; e < exit_points.size(); ++e) {
      const double d = distances.results[i * exit_points.size() + e].distance;
      if (d < best) {
        best = d;
        best_exit = e;
      }
    }
    const engine::Result path = engine.Run(
        engine::Query::Path(occupants[i], exit_points[best_exit]));
    total += best;
    total_doors += path.doors.size();
  }
  const double vip_ms = timer.ElapsedMillis();
  std::printf(
      "VIP engine: routed %zu occupants in %.2f ms (batch %.0f queries/s; "
      "avg escape %.1f m, avg %zu doors)\n",
      occupants.size(), vip_ms, distances.stats.queries_per_second,
      total / occupants.size(), total_doors / occupants.size());

  // The same routing with Dijkstra expansion per occupant.
  DistAwareModel dijkstra_router(venue, graph);
  timer.Reset();
  double check = 0.0;
  for (const IndoorPoint& person : occupants) {
    double best = kInfDistance;
    for (const IndoorPoint& exit_point : exit_points) {
      best = std::min(best, dijkstra_router.Distance(person, exit_point));
    }
    check += best;
  }
  const double dij_ms = timer.ElapsedMillis();
  std::printf("Dijkstra (DistAw): same routing in %.2f ms (%.1fx slower)\n",
              dij_ms, dij_ms / vip_ms);
  std::printf("sanity: total escape distance %.1f vs %.1f\n", total, check);
  return 0;
}
