// Emergency evacuation: "in an emergency, an indoor LBS can guide people to
// the nearby exit doors" (§1.1). Builds a tower, picks occupants on random
// floors, and routes each of them to their nearest building exit using
// VIP-Tree shortest path queries — then compares how long the same routing
// takes with a plain Dijkstra expansion (the DistAw approach).

#include <cstdio>

#include "baselines/dist_aware.h"
#include "common/stats.h"
#include "core/distance_query.h"
#include "core/path_query.h"
#include "core/vip_tree.h"
#include "graph/d2d_graph.h"
#include "synth/building_generator.h"
#include "synth/objects.h"

using namespace viptree;

int main() {
  synth::BuildingConfig config;
  config.name = "tower";
  config.floors = 12;
  config.rooms_per_floor = 60;
  config.staircases = 3;
  config.lifts = 1;
  config.exits = 4;
  const Venue venue = synth::GenerateStandaloneBuilding(config, /*seed=*/99);
  const D2DGraph graph(venue);
  const VIPTree vip = VIPTree::Build(venue, graph);

  // Exits are the exterior doors of the venue = the access doors of the
  // tree root (exactly the paper's d1/d7/d20 situation in Fig. 1).
  const std::vector<DoorId>& exits =
      vip.base().node(vip.base().root()).access_doors;
  std::printf("tower has %zu exits\n", exits.size());

  Rng rng(5);
  const std::vector<IndoorPoint> occupants =
      synth::RandomQueryPoints(venue, 200, rng);

  VIPPathQuery router(vip);
  VIPDistanceQuery dq(vip);
  DistAwareModel dijkstra_router(venue, graph);

  Timer timer;
  double total = 0.0;
  size_t total_doors = 0;
  for (const IndoorPoint& person : occupants) {
    // Nearest exit by network distance (an exit door is a point in the
    // partition it belongs to).
    double best = kInfDistance;
    IndoorPoint best_exit;
    for (DoorId exit : exits) {
      const IndoorPoint exit_point{venue.door(exit).partition_a,
                                   venue.door(exit).position};
      const double d = dq.Distance(person, exit_point);
      if (d < best) {
        best = d;
        best_exit = exit_point;
      }
    }
    const IndoorPath path = router.Path(person, best_exit);
    total += best;
    total_doors += path.doors.size();
  }
  const double vip_ms = timer.ElapsedMillis();
  std::printf(
      "VIP-Tree: routed %zu occupants in %.2f ms (avg escape %.1f m, avg %zu "
      "doors)\n",
      occupants.size(), vip_ms, total / occupants.size(),
      total_doors / occupants.size());

  // The same routing with Dijkstra expansion per occupant.
  timer.Reset();
  IndoorPoint exit_point;  // treat the exit door's partition as the target
  double check = 0.0;
  for (const IndoorPoint& person : occupants) {
    double best = kInfDistance;
    for (DoorId exit : exits) {
      exit_point.partition = venue.door(exit).partition_a;
      exit_point.position = venue.door(exit).position;
      best = std::min(best, dijkstra_router.Distance(person, exit_point));
    }
    check += best;
  }
  const double dij_ms = timer.ElapsedMillis();
  std::printf("Dijkstra (DistAw): same routing in %.2f ms (%.1fx slower)\n",
              dij_ms, dij_ms / vip_ms);
  std::printf("sanity: total escape distance %.1f vs %.1f\n", total, check);
  return 0;
}
