// Emergency evacuation: "in an emergency, an indoor LBS can guide people to
// the nearby exit doors" (§1.1). Builds a tower, picks occupants on random
// floors, and routes each of them to their nearest building exit. The
// (occupant, exit) distance matrix is streamed through the async
// engine::Service front-end — every distance request is a Submit whose
// callback fills one slot of the matrix as workers complete them — and
// each occupant's full door path comes back through a Ticket. Compares
// against a plain Dijkstra expansion (the DistAw approach).

#include <algorithm>
#include <cstdio>
#include <memory>

#include "baselines/dist_aware.h"
#include "common/stats.h"
#include "engine/service.h"
#include "graph/d2d_graph.h"
#include "synth/building_generator.h"
#include "synth/objects.h"

using namespace viptree;

int main() {
  synth::BuildingConfig config;
  config.name = "tower";
  config.floors = 12;
  config.rooms_per_floor = 60;
  config.staircases = 3;
  config.lifts = 1;
  config.exits = 4;
  const Venue venue = synth::GenerateStandaloneBuilding(config, /*seed=*/99);
  const D2DGraph graph(venue);

  // The serving front-end: resident workers over the shared bundle, fed
  // one Submit per (occupant, exit) pair.
  const auto bundle = std::make_shared<const engine::VenueBundle>(
      engine::VenueBundle::BuildFrom(venue, graph, /*objects=*/{}));
  engine::ServiceOptions service_options;
  service_options.num_threads = 4;
  service_options.queue_capacity = 4096;
  engine::Service service(bundle, service_options);
  service.Start();

  // Exits are the exterior doors of the venue = the access doors of the
  // tree root (exactly the paper's d1/d7/d20 situation in Fig. 1).
  const IPTree& tree = bundle->tree().base();
  const std::vector<DoorId>& exits = tree.node(tree.root()).access_doors;
  std::printf("tower has %zu exits\n", exits.size());

  Rng rng(5);
  const std::vector<IndoorPoint> occupants =
      synth::RandomQueryPoints(venue, 200, rng);
  std::vector<IndoorPoint> exit_points;
  exit_points.reserve(exits.size());
  for (DoorId exit : exits) {
    exit_points.push_back(IndoorPoint{venue.door(exit).partition_a,
                                      venue.door(exit).position});
  }

  // Stream the whole (occupant, exit) matrix through the service: the tag
  // encodes the slot, each callback writes its own disjoint cell (Drain's
  // synchronization publishes them to this thread), so no lock is needed.
  const size_t num_exits = exit_points.size();
  std::vector<double> distances(occupants.size() * num_exits, kInfDistance);
  Timer timer;
  for (size_t i = 0; i < occupants.size(); ++i) {
    for (size_t e = 0; e < num_exits; ++e) {
      engine::Request request;
      request.query = engine::Query::Distance(occupants[i], exit_points[e]);
      request.tag = i * num_exits + e;
      service.Submit(std::move(request),
                     [&distances](const engine::Response& response) {
                       if (response.ok()) {
                         distances[response.tag] = response.result.distance;
                       }
                     });
    }
  }
  service.Drain();

  // Pick each occupant's nearest exit and recover the full door path —
  // ticket futures this time, one per occupant.
  std::vector<engine::Ticket> paths;
  paths.reserve(occupants.size());
  double total = 0.0;
  for (size_t i = 0; i < occupants.size(); ++i) {
    double best = kInfDistance;
    size_t best_exit = 0;
    for (size_t e = 0; e < num_exits; ++e) {
      const double d = distances[i * num_exits + e];
      if (d < best) {
        best = d;
        best_exit = e;
      }
    }
    total += best;
    engine::Request request;
    request.query =
        engine::Query::Path(occupants[i], exit_points[best_exit]);
    paths.push_back(service.Submit(std::move(request)));
  }
  size_t total_doors = 0;
  for (engine::Ticket& ticket : paths) {
    const engine::Response& response = ticket.Wait();
    if (response.ok()) total_doors += response.result.doors.size();
  }
  const double vip_ms = timer.ElapsedMillis();
  const engine::ServiceStats stats = service.Stats();
  std::printf(
      "VIP service: routed %zu occupants in %.2f ms (%zu requests, "
      "p99 %.1f us; avg escape %.1f m, avg %zu doors)\n",
      occupants.size(), vip_ms, stats.num_queries,
      stats.latency_micros.p99, total / occupants.size(),
      total_doors / occupants.size());
  service.Stop();

  // The same routing with Dijkstra expansion per occupant.
  DistAwareModel dijkstra_router(venue, graph);
  timer.Reset();
  double check = 0.0;
  for (const IndoorPoint& person : occupants) {
    double best = kInfDistance;
    for (const IndoorPoint& exit_point : exit_points) {
      best = std::min(best, dijkstra_router.Distance(person, exit_point));
    }
    check += best;
  }
  const double dij_ms = timer.ElapsedMillis();
  std::printf("Dijkstra (DistAw): same routing in %.2f ms (%.1fx slower)\n",
              dij_ms, dij_ms / vip_ms);
  std::printf("sanity: total escape distance %.1f vs %.1f\n", total, check);
  return 0;
}
